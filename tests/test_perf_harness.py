"""The ``repro.perf`` benchmark harness: registry, runner, report, gate."""

from __future__ import annotations

import json

import pytest

from repro.perf import harness
from repro.perf.harness import (BenchResult, Scenario, build_report,
                                compare_reports, load_report, run_scenarios,
                                write_report, _median)


@pytest.fixture
def registry(monkeypatch):
    """An isolated registry with two tiny deterministic scenarios."""
    reg = {}
    monkeypatch.setattr(harness, "_REGISTRY", reg)
    monkeypatch.setattr(harness, "_ensure_builtin", lambda: None)
    calls = {"full": 0, "quick": 0, "runs": 0}

    def setup():
        calls["full"] += 1
        return list(range(100))

    def quick_setup():
        calls["quick"] += 1
        return list(range(10))

    def run(state):
        calls["runs"] += 1
        return len(state)

    harness.register(Scenario(name="tiny", description="d", setup=setup,
                              run=run, quick_setup=quick_setup,
                              units="ops"))
    harness.register(Scenario(name="alpha", description="d",
                              setup=lambda: [1, 2, 3],
                              run=lambda s: len(s), units="ops"))
    return calls


class TestRegistry:
    def test_duplicate_name_rejected(self, registry):
        with pytest.raises(ValueError, match="duplicate"):
            harness.register(Scenario(name="tiny", description="x",
                                      setup=list, run=len))

    def test_iter_is_sorted(self, registry):
        assert [s.name for s in harness.iter_scenarios()] == \
            ["alpha", "tiny"]

    def test_unknown_scenario_names_known_ones(self, registry):
        with pytest.raises(KeyError, match="alpha"):
            harness.get_scenario("nope")

    def test_builtin_registry_has_the_headline_scenario(self):
        names = {s.name for s in harness.iter_scenarios()}
        assert "visit_throughput" in names
        assert "psl_lookup" in names


class TestRunner:
    def test_medians_and_units(self, registry):
        results = run_scenarios(["tiny"], warmup=2, repeats=5,
                                verbose=False)
        (res,) = results
        assert res.name == "tiny" and res.units == "ops"
        assert res.n_units == 100
        assert res.repeats == 5 and len(res.all_wall_s) == 5
        assert res.wall_s == _median(list(res.all_wall_s))
        assert res.rate == pytest.approx(res.n_units / res.wall_s)
        # setup once, warmup twice + five timed runs
        assert registry["full"] == 1 and registry["quick"] == 0
        assert registry["runs"] == 7

    def test_quick_uses_quick_setup_and_clamps_repeats(self, registry):
        (res,) = run_scenarios(["tiny"], warmup=0, repeats=5, quick=True,
                               verbose=False)
        assert registry["quick"] == 1 and registry["full"] == 0
        assert res.repeats == 3
        assert res.n_units == 10

    def test_median_odd_even(self):
        assert _median([3.0, 1.0, 2.0]) == 2.0
        assert _median([4.0, 1.0, 2.0, 3.0]) == 2.5


class TestReport:
    def _result(self, name="s", rate=100.0) -> BenchResult:
        wall = 10.0 / rate
        return BenchResult(name=name, units="ops", n_units=10,
                           wall_s=wall, repeats=3, rate=rate,
                           all_wall_s=(wall,) * 3)

    def test_schema_fields(self, tmp_path):
        report = build_report([self._result()])
        entry = report["scenarios"]["s"]
        assert set(entry) == {"visits_per_sec", "wall_s", "repeats",
                              "python", "commit"}
        assert entry["visits_per_sec"] == pytest.approx(100.0)
        assert entry["repeats"] == 3
        path = write_report(report, tmp_path / "BENCH_test.json")
        assert load_report(path)["scenarios"]["s"] == entry

    def test_baseline_embedding_and_speedup(self):
        baseline = build_report([self._result(rate=50.0)])
        report = build_report([self._result(rate=100.0)],
                              baseline=baseline)
        assert report["speedup"]["s"] == pytest.approx(2.0)
        assert report["baseline"]["s"]["visits_per_sec"] == \
            pytest.approx(50.0)

    def test_load_report_rejects_non_reports(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"foo": 1}), encoding="utf-8")
        with pytest.raises(ValueError, match="scenarios"):
            load_report(path)


class TestRegressionGate:
    def _report(self, **rates):
        return {"scenarios": {name: {"visits_per_sec": rate}
                              for name, rate in rates.items()}}

    def test_within_tolerance_passes(self):
        cur = self._report(a=80.0, b=120.0)
        base = self._report(a=100.0, b=100.0)
        assert compare_reports(cur, base, tolerance=0.25) == []

    def test_regression_beyond_tolerance_fails(self):
        cur = self._report(a=70.0)
        base = self._report(a=100.0)
        (reg,) = compare_reports(cur, base, tolerance=0.25)
        assert reg.name == "a"
        assert reg.drop == pytest.approx(0.30)

    def test_new_and_retired_scenarios_do_not_block(self):
        cur = self._report(new_one=1.0)
        base = self._report(old_one=1000.0)
        assert compare_reports(cur, base, tolerance=0.25) == []

    def test_skipped_scenarios_are_reported_by_name(self):
        from repro.perf import skipped_scenarios
        cur = self._report(a=1.0, brand_new=2.0, other_new=3.0)
        base = self._report(a=1.0, retired=9.0)
        assert skipped_scenarios(cur, base) == ["brand_new", "other_new"]
        assert skipped_scenarios(base, cur) == ["retired"]
        assert skipped_scenarios(cur, cur) == []

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(self._report(), self._report(), tolerance=1.5)


class TestCommittedBaseline:
    def test_bench_5_json_is_a_valid_report(self):
        """The committed trajectory file must parse and carry the
        headline scenario with the required speedup evidence."""
        from pathlib import Path
        path = Path(__file__).parent.parent / "BENCH_5.json"
        report = load_report(path)
        entry = report["scenarios"]["visit_throughput"]
        assert set(entry) >= {"visits_per_sec", "wall_s", "repeats",
                              "python", "commit"}
        assert entry["visits_per_sec"] > 0
        # Seed-vs-optimized: the baseline (seed) numbers are embedded
        # and the recorded single-core speedup meets the PR 5 target.
        assert report["baseline"]["visit_throughput"]["visits_per_sec"] > 0
        assert report["speedup"]["visit_throughput"] >= 1.5

    def test_quick_baseline_is_a_valid_report(self):
        """The quick-sized gate reference CI's perf-smoke compares
        against must parse and cover every registered scenario."""
        from pathlib import Path
        report = load_report(
            Path(__file__).parent.parent / "BENCH_9.quick.json")
        registered = {s.name for s in harness.iter_scenarios()}
        assert registered <= set(report["scenarios"])
        for entry in report["scenarios"].values():
            assert entry["visits_per_sec"] > 0

    def test_bench_7_records_columnar_speedup(self):
        """BENCH_7's headline: the columnar sweep must put
        study_analysis at >= 3x its BENCH_6 rate (the PR 7 gate),
        with the BENCH_6 numbers embedded as the baseline."""
        from pathlib import Path
        report = load_report(Path(__file__).parent.parent / "BENCH_7.json")
        assert report["speedup"]["study_analysis"] >= 3.0
        assert report["baseline"]["study_analysis"]["visits_per_sec"] > 0
        # The new scenarios land with this trajectory point.
        assert "study_analysis_columnar" in report["scenarios"]
        assert "shard_decode" in report["scenarios"]

    def test_bench_8_records_partial_refresh_advantage(self):
        """BENCH_8's headline: refreshing a dataset with one shard of
        eight changed must beat the cold whole-dataset aggregation
        (study_analysis_columnar) — re-analysis cost scales with the
        delta, not the population."""
        from pathlib import Path
        report = load_report(Path(__file__).parent.parent / "BENCH_8.json")
        refresh = report["scenarios"]["study_partial_refresh"]
        cold = report["scenarios"]["study_analysis_columnar"]
        assert refresh["visits_per_sec"] >= 2 * cold["visits_per_sec"]
        # The new scenarios land with this trajectory point, with the
        # BENCH_7 numbers embedded as the baseline.
        assert "study_snapshot_roundtrip" in report["scenarios"]
        assert report["baseline"]["study_analysis"]["visits_per_sec"] > 0

    def test_bench_6_records_indexed_lookup_speedup(self):
        """BENCH_6's headline: the sidecar-indexed read_site path must
        beat the whole-shard scan by >= 10x on the 64-shard study."""
        from pathlib import Path
        report = load_report(Path(__file__).parent.parent / "BENCH_6.json")
        indexed = report["scenarios"]["site_lookup"]["visits_per_sec"]
        scan = report["scenarios"]["site_lookup_scan"]["visits_per_sec"]
        assert indexed >= 10 * scan
        # Seed-vs-current continuity: BENCH_5's numbers ride along.
        assert report["baseline"]["visit_throughput"]["visits_per_sec"] > 0


class TestCLI:
    def test_bench_list_and_quick_micro(self, capsys):
        from repro.__main__ import main
        main(["bench", "--list"])
        out = capsys.readouterr().out
        assert "visit_throughput" in out and "psl_lookup" in out

    def test_bench_compare_gate_exit_code(self, tmp_path, capsys):
        from repro.__main__ import main
        fast = tmp_path / "fast.json"
        write_report({"version": 1, "scenarios":
                      {"psl_lookup": {"visits_per_sec": 1e12,
                                      "wall_s": 0.0, "repeats": 1,
                                      "python": "x", "commit": "y"}}}, fast)
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--quick", "--repeats", "1", "--compare",
                  str(fast), "psl_lookup"])
        assert exc.value.code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_out_writes_report(self, tmp_path):
        from repro.__main__ import main
        out = tmp_path / "report.json"
        main(["bench", "--quick", "--repeats", "1", "--warmup", "0",
              "--out", str(out), "psl_lookup"])
        report = load_report(out)
        assert "psl_lookup" in report["scenarios"]
