"""Pluggable ShardStore backends and the HTTP store service.

The contract under test: every backend moves opaque blobs with
meta-as-commit-record semantics (a torn upload is a miss), while every
*guarantee* — digest verification, eviction of corrupt entries,
bit-identical crawl output — lives in :class:`ShardStore` above the
seam and therefore holds identically for local directories, in-memory
stores, and a ``store-serve`` endpoint reached over HTTP.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import urllib.request

import pytest

from repro.crawler import (
    Coordinator,
    CrawlConfig,
    Crawler,
    HTTPStoreBackend,
    InMemoryBackend,
    LocalDirectoryBackend,
    RetryPolicy,
    ShardStore,
    StoreBackendError,
    load_logs,
)
from repro.crawler.distributed import WorkSpec, run_shard_worker
from repro.crawler.storebackends import META_NAME
from repro.faults import FaultPlan, FaultPoint
from repro.ecosystem import PopulationConfig, generate_population
from repro.serve import make_store_server

N_SITES = 48
SEED = 2025
KEY = hashlib.sha256(b"entry").hexdigest()


@pytest.fixture()
def store_server(tmp_path):
    """A live store-serve endpoint over ``tmp_path/remote`` (loopback)."""
    server = make_store_server(tmp_path / "remote", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[0], server.server_address[1]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@pytest.fixture(params=["local", "memory", "http"])
def backend(request, tmp_path):
    if request.param == "local":
        yield LocalDirectoryBackend(tmp_path / "store")
    elif request.param == "memory":
        yield InMemoryBackend()
    else:
        server = make_store_server(tmp_path / "remote", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield HTTPStoreBackend(
                f"http://{server.server_address[0]}:"
                f"{server.server_address[1]}")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestBackendContract:
    def test_roundtrip_exact_bytes(self, backend):
        blobs = {"shard.jsonl": b'{"x": 1}\n' * 100,
                 "shard.index.json": b'{"version": 1}\n',
                 META_NAME: b'{"sha256": "abc"}\n'}
        backend.put(KEY, blobs)
        assert backend.exists(KEY)
        for name, data in blobs.items():
            assert backend.get(KEY, name) == data

    def test_missing_blob_is_none(self, backend):
        assert backend.get(KEY, "shard.jsonl") is None
        assert not backend.exists(KEY)

    def test_torn_upload_without_meta_is_a_miss(self, backend):
        # Data arrived but the committing meta blob never did: the
        # entry must read as absent, ready to be published later.
        backend.put(KEY, {"shard.jsonl": b"half an upload"})
        assert not backend.exists(KEY)
        assert backend.get(KEY, "shard.jsonl") == b"half an upload"

    def test_evict_is_idempotent_and_complete(self, backend):
        backend.evict(KEY)  # evicting a missing entry is a no-op
        backend.put(KEY, {"shard.jsonl": b"data", META_NAME: b"{}"})
        backend.evict(KEY)
        backend.evict(KEY)
        assert not backend.exists(KEY)
        assert backend.get(KEY, "shard.jsonl") is None

    def test_put_overwrites_in_place(self, backend):
        backend.put(KEY, {"shard.jsonl": b"v1", META_NAME: b"m1"})
        backend.put(KEY, {"shard.jsonl": b"v2", META_NAME: b"m2"})
        assert backend.get(KEY, "shard.jsonl") == b"v2"
        assert backend.get(KEY, META_NAME) == b"m2"


class TestStoreFaults:
    """Corruption costs a re-crawl, never wrong bytes."""

    def _seeded_store(self, tmp_path, backend):
        store = ShardStore(backend)
        payload = tmp_path / "shard-0000.jsonl"
        payload.write_text('{"rank": 1}\n')
        store.put(KEY, payload, count=1, compress=False)
        return store, payload.read_bytes()

    def test_digest_mismatch_evicts_and_misses(self, tmp_path):
        backend = InMemoryBackend()
        store, _ = self._seeded_store(tmp_path, backend)
        backend._entries[KEY]["shard.jsonl"] = b"corrupted bytes"
        assert store.fetch(KEY, tmp_path / "out", 0) is None
        assert not store.contains(KEY)  # the poisoned entry is gone

    def test_local_on_disk_corruption_evicts(self, tmp_path):
        backend = LocalDirectoryBackend(tmp_path / "cache")
        store, _ = self._seeded_store(tmp_path, backend)
        blob = backend._entry_dir(KEY) / "shard.jsonl"
        blob.write_bytes(b"flipped")
        assert store.fetch(KEY, tmp_path / "out", 0) is None
        assert not store.contains(KEY)

    def test_recrawl_after_corruption_republishes_cleanly(self, tmp_path):
        backend = InMemoryBackend()
        store, original = self._seeded_store(tmp_path, backend)
        backend._entries[KEY]["shard.jsonl"] = b"corrupted bytes"
        assert store.fetch(KEY, tmp_path / "out", 0) is None
        payload = tmp_path / "recrawled.jsonl"
        payload.write_bytes(original)
        store.put(KEY, payload, count=1, compress=False)
        fetched = store.fetch(KEY, tmp_path / "out", 0)
        assert fetched is not None
        assert (tmp_path / "out" / "shard-0000.jsonl").read_bytes() \
            == original

    def test_unparseable_meta_is_a_miss(self, tmp_path):
        backend = InMemoryBackend()
        store, _ = self._seeded_store(tmp_path, backend)
        backend._entries[KEY][META_NAME] = b"not json"
        assert store.fetch(KEY, tmp_path / "out", 0) is None


class TestHTTPService:
    def test_healthz(self, store_server):
        with urllib.request.urlopen(f"{store_server}/healthz") as response:
            assert json.load(response) == {"status": "ok"}

    def test_invalid_keys_and_names_are_unroutable(self, store_server):
        backend = HTTPStoreBackend(store_server)
        # Traversal components never match the key/name grammar, so the
        # server 404s them before any path is built.
        assert backend.get("..", "shard.jsonl") is None
        assert backend.get(KEY, "..") is None
        assert backend.get("ZZ-not-hex", META_NAME) is None

    def test_unreachable_store_raises_not_misses(self):
        backend = HTTPStoreBackend("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(StoreBackendError):
            backend.get(KEY, META_NAME)

    def test_http_and_local_views_of_one_directory_agree(self, tmp_path,
                                                         store_server):
        over_http = HTTPStoreBackend(store_server)
        over_http.put(KEY, {"shard.jsonl": b"data", META_NAME: b"{}"})
        direct = LocalDirectoryBackend(tmp_path / "remote")
        assert direct.exists(KEY)
        assert direct.get(KEY, "shard.jsonl") == b"data"
        direct.put(KEY, {"extra.json": b"[]"})
        assert over_http.get(KEY, "extra.json") == b"[]"


class TestRemoteStoreEndToEnd:
    def test_remote_cache_matches_local_and_serves_warm_runs(
            self, tmp_path, store_server):
        population = generate_population(
            PopulationConfig(n_sites=N_SITES, seed=SEED))
        config = CrawlConfig(seed=SEED)

        cold = Coordinator(population, config, store=ShardStore(store_server))
        cold_report = cold.run(tmp_path / "cold", n_shards=3)
        assert cold_report.cached_shards == 0
        assert cold_report.visits_executed == N_SITES

        # Warm run against the remote store: zero visits, full reuse.
        warm = Coordinator(population, config, store=ShardStore(store_server))
        warm_report = warm.run(tmp_path / "warm", n_shards=3)
        assert warm_report.visits_executed == 0
        assert warm_report.cached_shards == 3

        # Bit-identical to a local-directory-store run.
        local = Coordinator(population, config,
                            store=ShardStore(tmp_path / "local-cache"))
        local.run(tmp_path / "local", n_shards=3)
        for index in range(3):
            name = f"shard-{index:04d}.jsonl"
            assert (tmp_path / "warm" / name).read_bytes() \
                == (tmp_path / "local" / name).read_bytes()
        assert cold_report.manifest == warm_report.manifest

        # The served directory doubles as a local store, unchanged layout.
        direct = Coordinator(population, config,
                             store=ShardStore(tmp_path / "remote"))
        direct_report = direct.run(tmp_path / "direct", n_shards=3)
        assert direct_report.visits_executed == 0
        assert direct_report.cached_shards == 3

    def test_worker_consults_remote_cache_directly(self, tmp_path,
                                                   store_server):
        """A bare crawl-shard worker given ``--cache-dir URL`` serves a
        warm shard from the shared store without synthesizing a site."""
        from repro.crawler import ShardPlan
        population = generate_population(
            PopulationConfig(n_sites=N_SITES, seed=SEED))
        config = CrawlConfig(seed=SEED)
        report = Coordinator(population, config,
                             store=ShardStore(store_server)).run(
            tmp_path / "seed-run", n_shards=2)

        plan = ShardPlan.for_population(population, 2)
        spec = WorkSpec.build(population, config, plan,
                              compress=False, keep_incomplete=False)
        (tmp_path / "worker").mkdir()
        spec_path = spec.save(tmp_path / "worker")
        results = [run_shard_worker(spec_path, index,
                                    cache_dir=store_server)
                   for index in range(2)]
        assert [r["sha256"] for r in results] \
            == list(report.manifest.digests)
        worker_logs = [log for r in results
                       for log in load_logs(tmp_path / "worker" / r["file"])]
        serial = Crawler(population, config).crawl()
        assert [log.to_dict() for log in
                sorted(worker_logs, key=lambda l: l.rank)] \
            == [log.to_dict() for log in serial]


def _rogue_server(conversation):
    """A one-request-at-a-time socket server speaking broken HTTP.

    ``conversation(conn)`` decides how to mistreat each client.  Models
    the failure classes urllib does *not* wrap into URLError: a garbage
    status line and a body shorter than its Content-Length.
    """
    server = socket.create_server(("127.0.0.1", 0))

    def loop():
        while True:
            try:
                conn, _ = server.accept()
            except OSError:
                return
            with conn:
                try:
                    conversation(conn)
                except OSError:
                    pass

    threading.Thread(target=loop, daemon=True).start()
    return server, f"http://127.0.0.1:{server.getsockname()[1]}"


class TestConnectionFailureIsNeverAMiss:
    """Satellite contract: broken transport raises, never misses.

    Before the fix, ``http.client.BadStatusLine`` and ``IncompleteRead``
    escaped ``HTTPStoreBackend`` as raw exceptions (or worse, turned
    into a "miss" upstream) because urllib only wraps errors raised
    while *opening* the connection.  Each scenario here must surface as
    :class:`StoreBackendError` — a cache miss answer is how a healthy
    store says "re-crawl"; a broken wire must never impersonate it.
    """

    NO_RETRY = RetryPolicy(attempts=1)

    def test_garbage_status_line_raises(self):
        def slam(conn):
            conn.recv(65536)
            conn.sendall(b"this is not http\r\n")

        server, url = _rogue_server(slam)
        try:
            backend = HTTPStoreBackend(url, timeout=2.0,
                                       retry=self.NO_RETRY)
            with pytest.raises(StoreBackendError):
                backend.get(KEY, META_NAME)
            with pytest.raises(StoreBackendError):
                backend.exists(KEY)
        finally:
            server.close()

    def test_truncated_body_raises(self):
        def truncate(conn):
            conn.recv(65536)
            conn.sendall(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Length: 4096\r\n\r\n"
                         b"only this much")

        server, url = _rogue_server(truncate)
        try:
            backend = HTTPStoreBackend(url, timeout=2.0,
                                       retry=self.NO_RETRY)
            with pytest.raises(StoreBackendError):
                backend.get(KEY, META_NAME)
        finally:
            server.close()

    def test_connection_slam_mid_service_retries_through(self, tmp_path):
        # A store-serve that drops one connection per method without a
        # status line (kind="close"): the retrying client rides it out.
        plan = FaultPlan([FaultPoint("http.response", kind="close",
                                     times=1)], seed=1)
        server = make_store_server(tmp_path / "remote", port=0,
                                   fault_plan=plan)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = (f"http://{server.server_address[0]}:"
                   f"{server.server_address[1]}")
            backend = HTTPStoreBackend(
                url, retry=RetryPolicy(attempts=3, backoff=0.01))
            backend.put(KEY, {META_NAME: b"{}"})   # PUT slammed once
            assert backend.get(KEY, META_NAME) == b"{}"  # GET slammed once
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestRetryPolicy:
    def test_delay_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(attempts=5, backoff=0.1, multiplier=2.0,
                             max_backoff=0.3)
        assert [policy.delay(i) for i in range(4)] \
            == [0.1, 0.2, 0.3, 0.3]

    @pytest.mark.parametrize("kwargs", [
        {"attempts": 0}, {"backoff": -0.1}, {"multiplier": 0.5},
        {"max_backoff": -1.0},
    ])
    def test_invalid_knobs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def _flaky_server(self, tmp_path, times):
        plan = FaultPlan([FaultPoint("http.response", kind="http-503",
                                     times=times)], seed=1)
        server = make_store_server(tmp_path / "remote", port=0,
                                   fault_plan=plan)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = (f"http://{server.server_address[0]}:"
               f"{server.server_address[1]}")
        return server, thread, url

    def test_get_retries_503_with_backoff_then_succeeds(self, tmp_path):
        server, thread, url = self._flaky_server(tmp_path, times=2)
        try:
            policy = RetryPolicy(attempts=3, backoff=0.05, multiplier=2.0)
            backend = HTTPStoreBackend(url, retry=policy)
            delays = []
            backend._sleep = delays.append
            backend.put(KEY, {META_NAME: b"{}"})
            assert backend.get(KEY, META_NAME) == b"{}"
            # times=2 caps per method scope: the PUT and the GET each
            # rode out two 503s on the policy's exponential schedule.
            assert delays == [policy.delay(0), policy.delay(1)] * 2
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_retry_budget_exhaustion_raises(self, tmp_path):
        server, thread, url = self._flaky_server(tmp_path, times=None)
        try:
            policy = RetryPolicy(attempts=3, backoff=0.01)
            backend = HTTPStoreBackend(url, retry=policy)
            delays = []
            backend._sleep = delays.append
            with pytest.raises(StoreBackendError):
                backend.get(KEY, META_NAME)
            assert len(delays) == policy.attempts - 1
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_delete_is_not_idempotent_safe_and_fails_fast(self, tmp_path):
        server, thread, url = self._flaky_server(tmp_path, times=None)
        try:
            backend = HTTPStoreBackend(
                url, retry=RetryPolicy(attempts=5, backoff=0.01))
            delays = []
            backend._sleep = delays.append
            with pytest.raises(StoreBackendError):
                backend.evict(KEY)
            assert delays == []   # DELETE gets exactly one attempt
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_miss_is_not_retried(self, store_server):
        backend = HTTPStoreBackend(
            store_server, retry=RetryPolicy(attempts=5, backoff=0.01))
        delays = []
        backend._sleep = delays.append
        assert backend.get(KEY, META_NAME) is None   # honest 404
        assert delays == []


class TestLocalPutDurability:
    """Satellite contract: blob bytes are fsynced before the rename."""

    def test_every_blob_fsyncs_before_replace(self, tmp_path,
                                              monkeypatch):
        synced = []
        replaced = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            synced.append(len(replaced))   # replaces seen so far
            return real_fsync(fd)

        def spy_replace(src, dst):
            replaced.append(str(dst))
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        backend = LocalDirectoryBackend(tmp_path / "store")
        backend.put(KEY, {"shard.jsonl": b"data", META_NAME: b"{}"})
        # Two blobs -> two fsyncs, each before its own rename landed.
        assert synced == [0, 1]
        assert [dst.rsplit("/", 1)[1] for dst in replaced] \
            == ["shard.jsonl", META_NAME]   # meta commits last
        assert not list((tmp_path / "store").rglob("*.tmp"))


class TestTornMeta:
    """Satellite contract: a torn meta.json is a miss, never a
    corrupt-but-present entry that poisons every later fetch."""

    def _published(self, tmp_path):
        backend = LocalDirectoryBackend(tmp_path / "cache")
        store = ShardStore(backend)
        payload = tmp_path / "shard-0000.jsonl"
        payload.write_text('{"rank": 1}\n')
        store.put(KEY, payload, count=1, compress=False)
        return backend, store, payload.read_bytes()

    def test_meta_absent_is_a_clean_miss(self, tmp_path):
        backend, store, _ = self._published(tmp_path)
        (backend._entry_dir(KEY) / META_NAME).unlink()
        assert not store.contains(KEY)
        assert store.fetch(KEY, tmp_path / "out", 0) is None

    def test_leftover_tmp_is_not_a_commit(self, tmp_path):
        backend, store, _ = self._published(tmp_path)
        entry = backend._entry_dir(KEY)
        (entry / META_NAME).rename(entry / (META_NAME + ".tmp"))
        assert not store.contains(KEY)
        assert store.fetch(KEY, tmp_path / "out", 0) is None

    def test_garbage_meta_is_evicted_not_poisonous(self, tmp_path):
        backend, store, original = self._published(tmp_path)
        (backend._entry_dir(KEY) / META_NAME).write_bytes(b'{"count"')
        assert store.fetch(KEY, tmp_path / "out", 0) is None
        # The half-written commit record is gone, not lingering where
        # contains() would keep answering True forever.
        assert not store.contains(KEY)
        assert not backend.exists(KEY)
        payload = tmp_path / "again.jsonl"
        payload.write_bytes(original)
        store.put(KEY, payload, count=1, compress=False)
        fetched = store.fetch(KEY, tmp_path / "out", 0)
        assert fetched is not None
        assert (tmp_path / "out" / "shard-0000.jsonl").read_bytes() \
            == original
