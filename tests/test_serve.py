"""The study-catalog HTTP service (``repro.serve``).

The contract under test: every response is a pure function of (shard
bytes, resource, canonical params) — ETags are stable across server
restarts, ``If-None-Match`` revalidation yields 304, and report bodies
are byte-identical to what an in-process ``Study`` over the same logs
computes.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis import Study
from repro.crawler import save_logs
from repro.serve import (StudyCatalog, canonical_resource, etag_matches,
                         make_server, parse_params, get_query, QueryError)

N_SHARDS = 3


@pytest.fixture(scope="module")
def study_dir(crawl_logs, tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-root")
    directory = root / "demo"
    directory.mkdir()
    save_logs(crawl_logs, directory, shards=N_SHARDS, compress=True)
    return root


@pytest.fixture(scope="module")
def server(study_dir):
    server = make_server(study_dir, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


@pytest.fixture(scope="module")
def client(server):
    port = server.server_address[1]

    def get(path, headers=None, method="GET"):
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", headers=headers or {},
            method=method)
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, dict(response.headers), \
                    response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    return get


class TestRouting:
    def test_listing(self, client):
        status, headers, body = client("/studies")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert [s["id"] for s in payload["studies"]] == ["demo"]
        assert payload["studies"][0]["n_shards"] == N_SHARDS

    def test_study_summary_lists_reports(self, client):
        status, _, body = client("/studies/demo")
        assert status == 200
        payload = json.loads(body)
        assert payload["id"] == "demo"
        assert "top-exfiltrators" in payload["reports"]
        assert "summary" in payload["reports"]

    def test_shards_expose_manifest_digests(self, client, study_dir):
        from repro.crawler import ShardManifest
        manifest = ShardManifest.load(study_dir / "demo")
        status, _, body = client("/studies/demo/shards")
        assert status == 200
        rows = json.loads(body)["shards"]
        assert [r["sha256"] for r in rows] == list(manifest.digests)
        assert [r["count"] for r in rows] == list(manifest.counts)

    def test_site_returns_full_visit_log(self, client, crawl_logs):
        log = crawl_logs[5]
        status, _, body = client(f"/studies/demo/sites/{log.rank}")
        assert status == 200
        assert json.loads(body) == json.loads(
            json.dumps(log.to_dict(), sort_keys=True))

    def test_head_matches_get(self, client):
        get_status, get_headers, body = client("/studies/demo")
        head_status, head_headers, head_body = client("/studies/demo",
                                                      method="HEAD")
        assert (get_status, get_headers["ETag"]) \
            == (head_status, head_headers["ETag"])
        assert head_body == b"" and body

    @pytest.mark.parametrize("path,status", [
        ("/studies/nope", 404),
        ("/studies/demo/sites/999999999", 404),
        ("/studies/demo/sites/abc", 400),
        ("/studies/demo/reports/nope", 404),
        ("/studies/demo/reports/top-exfiltrators?limit=x", 400),
        ("/studies/demo/reports/top-exfiltrators?limit=0", 400),
        ("/studies/demo/reports/top-exfiltrators?limit=501", 400),
        ("/studies/demo/reports/top-exfiltrators?limit=1&limit=2", 400),
        ("/studies/demo/reports/top-exfiltrators?frobnicate=1", 400),
        ("/studies/demo/reports/prevalence?bucket=0", 400),
        ("/studies/demo/reports/prevalence?bucket=1.5", 400),
        ("/studies/demo/reports/entity", 400),     # missing required name
        ("/studies/demo/shards?x=1", 400),         # takes no params
        ("/nope", 404),
    ])
    def test_error_statuses_are_json(self, client, path, status):
        got, headers, body = client(path)
        assert got == status
        payload = json.loads(body)
        assert payload["status"] == status and payload["error"]
        # A rejected request is not a cacheable resource: no ETag, and
        # the body is the structured error, never an HTML traceback.
        assert "ETag" not in headers
        assert headers["Content-Type"].startswith("application/json")


class TestETags:
    def test_etag_stable_across_restarts(self, study_dir, client):
        """A second server over the same bytes issues the same ETags —
        they derive from the manifest digests, not server state."""
        _, first_headers, _ = client("/studies/demo/reports/summary")
        other = make_server(study_dir, port=0)
        thread = threading.Thread(target=other.serve_forever, daemon=True)
        thread.start()
        try:
            port = other.server_address[1]
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/studies/demo/reports/summary"
            ) as response:
                assert response.headers["ETag"] == first_headers["ETag"]
        finally:
            other.shutdown()
            other.server_close()

    def test_if_none_match_yields_304_with_empty_body(self, client):
        status, headers, body = client("/studies/demo/shards")
        assert status == 200
        etag = headers["ETag"]
        status2, headers2, body2 = client("/studies/demo/shards",
                                          {"If-None-Match": etag})
        assert status2 == 304 and body2 == b""
        assert headers2["ETag"] == etag

    def test_star_and_weak_validators_match(self, client):
        _, headers, _ = client("/studies/demo")
        etag = headers["ETag"]
        for candidate in ("*", f"W/{etag}", f'"zzz", {etag}'):
            status, _, _ = client("/studies/demo",
                                  {"If-None-Match": candidate})
            assert status == 304, candidate
        status, _, _ = client("/studies/demo", {"If-None-Match": '"zzz"'})
        assert status == 200

    def test_default_params_share_an_etag(self, client):
        """?limit=20 and an omitted limit canonicalize identically."""
        _, h1, b1 = client("/studies/demo/reports/top-exfiltrators")
        _, h2, b2 = client("/studies/demo/reports/top-exfiltrators?limit=20")
        assert h1["ETag"] == h2["ETag"] and b1 == b2
        _, h3, _ = client("/studies/demo/reports/top-exfiltrators?limit=5")
        assert h3["ETag"] != h1["ETag"]

    def test_distinct_resources_distinct_etags(self, client):
        etags = set()
        for path in ("/studies", "/studies/demo", "/studies/demo/shards",
                     "/studies/demo/reports",
                     "/studies/demo/reports/summary"):
            _, headers, _ = client(path)
            etags.add(headers["ETag"])
        assert len(etags) == 5

    def test_dataset_change_changes_etags(self, crawl_logs, client,
                                          tmp_path):
        """Same logs, different sharding → different shard digests →
        every study etag moves (it pins bytes, not content)."""
        other = tmp_path / "demo"
        other.mkdir()
        save_logs(crawl_logs, other, shards=N_SHARDS + 1, compress=True)
        catalog = StudyCatalog(tmp_path)
        _, headers, _ = client("/studies/demo")
        assert catalog.get("demo").etag != headers["ETag"].strip('"')


class TestReportFidelity:
    def test_top_exfiltrators_matches_in_process_study(self, client,
                                                       crawl_logs):
        study = Study(crawl_logs)
        expected = [{"domain": r.domain, "n_cookies": r.n_cookies,
                     "pct_of_all_cookies": r.pct_of_all_cookies}
                    for r in study.figure2(top=10)]
        status, _, body = client(
            "/studies/demo/reports/top-exfiltrators?limit=10")
        assert status == 200
        payload = json.loads(body)
        assert payload["result"] == json.loads(
            json.dumps(expected, sort_keys=True))
        # Byte-level: the served body IS the canonical rendering.
        assert body == (json.dumps(payload, sort_keys=True,
                                   separators=(",", ":")) + "\n").encode()

    def test_summary_matches_in_process_study(self, client, crawl_logs):
        study = Study(crawl_logs)
        status, _, body = client("/studies/demo/reports/summary")
        assert status == 200
        result = json.loads(body)["result"]
        assert result["n_sites"] == study.n_sites
        assert result["sec51_prevalence"] == study.sec51_prevalence()
        assert result["sec56_inclusion"] == study.sec56_inclusion()

    def test_prevalence_buckets_partition_the_study(self, client,
                                                    crawl_logs):
        status, _, body = client("/studies/demo/reports/prevalence?bucket=7")
        assert status == 200
        rows = json.loads(body)["result"]
        assert sum(r["n_sites"] for r in rows) == len(crawl_logs)
        ranks = sorted(log.rank for log in crawl_logs)
        assert rows[0]["bucket"] == ranks[0] // 7
        for row in rows:
            assert row["rank_lo"] == row["bucket"] * 7
            assert row["rank_hi"] == row["rank_lo"] + 6
            assert "pct_sites_with_third_party" in row

    def test_whole_study_bucket_equals_global_prevalence(self, client,
                                                         crawl_logs):
        """One bucket spanning every rank must reproduce the global
        sec51 numbers exactly — the accumulator decomposition is
        associative."""
        study = Study(crawl_logs)
        bucket = 10 ** 6
        status, _, body = client(
            f"/studies/demo/reports/prevalence?bucket={bucket}")
        assert status == 200
        rows = json.loads(body)["result"]
        assert len(rows) == 1
        got = {k: v for k, v in rows[0].items()
               if k not in ("bucket", "rank_lo", "rank_hi", "n_sites")}
        assert got == study.sec51_prevalence()

    def test_entity_drilldown_counts_events(self, client, crawl_logs):
        study = Study(crawl_logs)
        if not study.exfil_events:
            pytest.skip("fixture crawl produced no exfiltration")
        event = study.exfil_events[0]
        entity = study.entities.entity_of(event.actor)
        status, _, body = client(
            f"/studies/demo/reports/entity?name={entity}")
        assert status == 200
        result = json.loads(body)["result"]
        expected = sum(
            1 for e in study.exfil_events
            if study.entities.entity_of(e.actor) == entity)
        assert result["as_exfiltrator"]["n_events"] == expected
        assert result["n_sites"] >= 1


class TestQueryHelpers:
    def test_parse_params_defaults_and_rejects(self):
        query = get_query("top-exfiltrators")
        assert parse_params(query, {}) == {"limit": 20}
        assert parse_params(query, {"limit": ["3"]}) == {"limit": 3}
        with pytest.raises(QueryError, match="unknown parameter"):
            parse_params(query, {"nope": ["1"]})
        with pytest.raises(QueryError, match="more than once"):
            parse_params(query, {"limit": ["1", "2"]})
        with pytest.raises(QueryError, match=">= 1"):
            parse_params(query, {"limit": ["0"]})

    def test_canonical_resource_sorts_params(self):
        assert canonical_resource("/r", {"b": 2, "a": 1}) == "/r?a=1&b=2"
        assert canonical_resource("/r") == "/r"

    def test_etag_matches_variants(self):
        assert etag_matches('"x"', "x")
        assert etag_matches('W/"x"', "x")
        assert etag_matches('"a", "x"', "x")
        assert etag_matches("*", "x")
        assert not etag_matches('"y"', "x")
        assert not etag_matches(None, "x")
        assert not etag_matches("", "x")


class TestCatalogDiscovery:
    def test_single_study_root(self, study_dir):
        catalog = StudyCatalog(study_dir / "demo")
        assert catalog.study_ids() == ["demo"]

    def test_refresh_picks_up_new_and_dropped_studies(self, crawl_logs,
                                                      tmp_path):
        root = tmp_path
        first = root / "alpha"
        first.mkdir()
        save_logs(crawl_logs, first, shards=2)
        catalog = StudyCatalog(root)
        assert catalog.study_ids() == ["alpha"]
        second = root / "beta"
        second.mkdir()
        save_logs(crawl_logs, second, shards=2)
        catalog.refresh()
        assert catalog.study_ids() == ["alpha", "beta"]
        entry = catalog.get("alpha")
        assert entry.is_current()
        import shutil
        shutil.rmtree(second)
        catalog.refresh()
        assert catalog.study_ids() == ["alpha"]


# ---------------------------------------------------------------------------
# Catalog refresh: non-blocking, crash-safe, and incrementally aggregated
# ---------------------------------------------------------------------------

def _touch_shard(directory, shard=0):
    """Drop one log from a shard and republish the manifest — the
    smallest dataset-version bump a re-crawl can produce."""
    from repro.crawler.storage import ShardManifest, load_shard, write_shard
    manifest = ShardManifest.load(directory)
    changed = load_shard(directory, shard)[:-1]
    written = write_shard(changed, directory, shard,
                          compress=manifest.compress)
    counts = list(manifest.counts)
    digests = list(manifest.digests)
    counts[shard] = written.count
    digests[shard] = written.sha256
    ShardManifest(n_shards=manifest.n_shards, total=sum(counts),
                  compress=manifest.compress, files=manifest.files,
                  counts=tuple(counts), digests=tuple(digests),
                  ).save(directory)


class TestCatalogRefreshLocking:
    def test_refresh_does_not_hold_the_lock_while_hashing(
            self, crawl_logs, tmp_path, monkeypatch):
        """Entry construction (which digests every shard of a pre-digest
        manifest) must not stall concurrent get()/listing() calls."""
        import repro.serve.catalog as catalog_module

        root = tmp_path
        alpha = root / "alpha"
        alpha.mkdir()
        save_logs(crawl_logs[:20], alpha, shards=2)
        catalog = StudyCatalog(root)

        # A second study whose manifest carries no digests, so the
        # refresh has to hash its shards during StudyEntry.__init__.
        beta = root / "beta"
        beta.mkdir()
        save_logs(crawl_logs[:20], beta, shards=2)
        manifest_path = beta / "manifest.json"
        data = json.loads(manifest_path.read_text())
        for shard in data["shards"]:
            shard.pop("sha256", None)
        manifest_path.write_text(json.dumps(data))

        hashing = threading.Event()
        release = threading.Event()
        real_digest = catalog_module.compute_digest

        def slow_digest(path):
            hashing.set()
            assert release.wait(timeout=10), "test deadlocked"
            return real_digest(path)

        monkeypatch.setattr(catalog_module, "compute_digest", slow_digest)
        refresher = threading.Thread(target=catalog.refresh)
        refresher.start()
        try:
            assert hashing.wait(timeout=10)
            # The rebuild is mid-hash: reads must not block on it.
            got = {}
            reader = threading.Thread(target=lambda: got.update(
                ids=catalog.study_ids(), listing=catalog.listing(),
                entry=catalog.get("alpha")))
            reader.start()
            reader.join(timeout=5)
            assert not reader.is_alive(), \
                "get()/listing() blocked behind the refresh rebuild"
            assert got["ids"] == ["alpha"]
        finally:
            release.set()
            refresher.join(timeout=10)
        assert catalog.study_ids() == ["alpha", "beta"]

    def test_refresh_skips_a_study_that_vanished_after_discovery(
            self, crawl_logs, tmp_path, monkeypatch):
        root = tmp_path
        alpha = root / "alpha"
        alpha.mkdir()
        save_logs(crawl_logs[:20], alpha, shards=2)
        catalog = StudyCatalog(root)
        ghost = root / "ghost"   # discovered, then deleted before build
        monkeypatch.setattr(
            catalog, "_discover",
            lambda: {"alpha": alpha, "ghost": ghost})
        catalog.refresh()        # must not raise
        assert catalog.study_ids() == ["alpha"]
        with pytest.raises(KeyError):
            catalog.get("ghost")


class TestBucketSizeGuard:
    def test_zero_bucket_raises_value_error_not_zero_division(
            self, crawl_logs, tmp_path):
        from repro.serve.catalog import StudyEntry
        directory = tmp_path / "study"
        directory.mkdir()
        save_logs(crawl_logs[:20], directory, shards=2)
        entry = StudyEntry("study", directory)
        for bad in (0, -4):
            with pytest.raises(ValueError, match="bucket_size must be >= 1"):
                entry.prevalence_by_bucket(bad)


class TestSnapshotSidecar:
    def _entry(self, directory):
        from repro.serve.catalog import StudyEntry
        return StudyEntry(directory.name, directory)

    def _counting_ingest(self, monkeypatch):
        import repro.analysis.snapshot as snapshot_module
        calls = []
        real = snapshot_module._ingest_shard

        def counting(path, entity_map, filter_list):
            calls.append(path.name)
            return real(path, entity_map, filter_list)

        monkeypatch.setattr(snapshot_module, "_ingest_shard", counting)
        return calls

    def test_study_persists_a_sidecar_snapshot(self, crawl_logs, tmp_path,
                                               monkeypatch):
        from repro.serve.catalog import SNAPSHOT_NAME
        directory = tmp_path / "study"
        directory.mkdir()
        save_logs(crawl_logs[:30], directory, shards=3)
        entry = self._entry(directory)
        etag_before = entry.etag
        reference = entry.study().report_bytes()
        assert (directory / SNAPSHOT_NAME).exists()

        # A fresh entry (catalog rebuild, server restart) resumes from
        # the sidecar: zero shards re-ingested, identical report bytes,
        # and the ETag untouched by the sidecar's existence.
        calls = self._counting_ingest(monkeypatch)
        fresh = self._entry(directory)
        assert fresh.etag == etag_before
        assert fresh.study().report_bytes() == reference
        assert calls == []

    def test_catalog_refresh_upgrades_a_stale_entry_incrementally(
            self, crawl_logs, tmp_path, monkeypatch):
        from repro.analysis.reports import Study, StudyAccumulator
        from repro.analysis.columnar import iter_shard_batches
        root = tmp_path
        directory = root / "alpha"
        directory.mkdir()
        save_logs(crawl_logs[:30], directory, shards=3)
        catalog = StudyCatalog(root)
        catalog.get("alpha").study()          # builds + persists sidecar

        _touch_shard(directory)
        calls = self._counting_ingest(monkeypatch)
        catalog.refresh()
        entry = catalog.get("alpha")
        refreshed = entry.study().report_bytes()
        assert calls == [entry.manifest.files[0]], \
            "refresh must re-ingest exactly the changed shard"

        acc = StudyAccumulator()
        for batch in iter_shard_batches(directory):
            acc.add_shard_batch(batch)
        assert refreshed == Study.from_accumulator(acc).report_bytes()
