"""The blocklist baseline extension."""

import pytest

from repro.analysis.filterlists import FilterList
from repro.browser.browser import Browser
from repro.browser.scripts import Script
from repro.cookieguard.blocklist import BlocklistExtension


def browser_with(blocker):
    browser = Browser()
    browser.install(blocker)
    return browser


class TestBlocklistExtension:
    def test_listed_script_blocked(self):
        blocker = BlocklistExtension(FilterList(["||tracker.com^"]))
        browser = browser_with(blocker)
        ran = []
        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://cdn.tracker.com/t.js",
                            behavior=lambda js: ran.append("tracker"))])
        assert ran == []
        assert blocker.blocked_scripts == 1
        assert blocker.blocked_urls == ["https://cdn.tracker.com/t.js"]

    def test_unlisted_script_runs(self):
        blocker = BlocklistExtension(FilterList(["||tracker.com^"]))
        browser = browser_with(blocker)
        ran = []
        browser.visit("https://site.com/", scripts=[
            Script.external("https://benign.com/lib.js",
                            behavior=lambda js: ran.append("lib"))])
        assert ran == ["lib"]
        assert blocker.allowed_scripts == 1

    def test_inline_scripts_never_blocked(self):
        blocker = BlocklistExtension(FilterList(["||tracker.com^"]))
        browser = browser_with(blocker)
        ran = []
        browser.visit("https://site.com/", scripts=[
            Script.inline(behavior=lambda js: ran.append("inline"))])
        assert ran == ["inline"]

    def test_dynamic_inclusion_filtered(self):
        blocker = BlocklistExtension(FilterList(["||tracker.com^"]))
        browser = browser_with(blocker)
        ran = []

        def loader(js):
            js.include_script(src="https://cdn.tracker.com/child.js",
                              behavior=lambda j: ran.append("child"))
            js.include_script(src="https://ok.com/child.js",
                              behavior=lambda j: ran.append("ok"))

        browser.visit("https://site.com/", scripts=[
            Script.external("https://loader.com/l.js", behavior=loader)])
        assert ran == ["ok"]
        assert blocker.blocked_scripts == 1

    def test_cloaked_script_evades_blocklist(self):
        # First-party URL, third-party behaviour: no list rule matches.
        blocker = BlocklistExtension(FilterList(["||tracker.com^$third-party"]))
        browser = browser_with(blocker)
        ran = []
        browser.visit("https://site.com/", scripts=[
            Script.external("https://metrics.site.com/t.js",
                            behavior=lambda js: ran.append("cloaked"))])
        assert ran == ["cloaked"]
        assert blocker.blocked_scripts == 0

    def test_blocked_tracker_sets_no_cookies(self):
        blocker = BlocklistExtension(FilterList(["||tracker.com^"]))
        browser = browser_with(blocker)
        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://cdn.tracker.com/t.js",
                            behavior=lambda js: js.set_cookie("_t=1"))])
        assert len(page.jar) == 0

    def test_default_lists_block_known_trackers(self):
        blocker = BlocklistExtension()
        browser = browser_with(blocker)
        ran = []
        browser.visit("https://site.com/", scripts=[
            Script.external("https://www.googletagmanager.com/gtm.js",
                            behavior=lambda js: ran.append("gtm"))])
        assert ran == []
