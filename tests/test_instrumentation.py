"""The measurement extension (§4.1)."""

import pytest

from repro.browser.browser import Browser
from repro.browser.scripts import Script
from repro.cookies.serialize import serialize_set_cookie
from repro.extension.instrumentation import InstrumentationExtension
from repro.net.headers import Headers
from repro.net.http import Response
from repro.records import API_COOKIE_STORE, API_DOCUMENT_COOKIE


@pytest.fixture
def browser():
    b = Browser()
    b.install(InstrumentationExtension())
    return b


def inst(browser) -> InstrumentationExtension:
    return browser.extensions[0]


class TestWriteLogging:
    def test_set_logged_with_attribution(self, browser):
        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://t.com/t.js",
                            behavior=lambda js: js.set_cookie("a=1"))])
        log = inst(browser).log_for(page)
        write = log.cookie_writes[0]
        assert write.kind == "set"
        assert write.cookie_name == "a"
        assert write.script_domain == "t.com"
        assert write.inclusion == "direct"
        assert write.api == API_DOCUMENT_COOKIE

    def test_overwrite_logged_with_prev_value(self, browser):
        def one(js):
            js.set_cookie("a=first; Domain=site.com")

        def two(js):
            js.set_cookie("a=second; Domain=site.com")

        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://a.com/1.js", behavior=one),
            Script.external("https://b.com/2.js", behavior=two)])
        log = inst(browser).log_for(page)
        overwrite = [w for w in log.cookie_writes if w.kind == "overwrite"][0]
        assert overwrite.prev_value == "first"
        assert "value" in overwrite.attrs_changed

    def test_delete_logged(self, browser):
        def setter(js):
            js.set_cookie("a=1; Domain=site.com")

        def deleter(js):
            js.set_cookie("a=; Domain=site.com; Max-Age=0")

        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://a.com/1.js", behavior=setter),
            Script.external("https://b.com/2.js", behavior=deleter)])
        log = inst(browser).log_for(page)
        assert any(w.kind == "delete" for w in log.cookie_writes)

    def test_inline_write_marked_inline(self, browser):
        page = browser.visit("https://site.com/", scripts=[
            Script.inline(behavior=lambda js: js.set_cookie("a=1"))])
        write = inst(browser).log_for(page).cookie_writes[0]
        assert write.inclusion == "inline"
        assert write.script_domain is None

    def test_indirect_write_marked(self, browser):
        def loader(js):
            js.include_script(src="https://child.com/c.js",
                              behavior=lambda j: j.set_cookie("x=1"))

        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://gtm.com/g.js", behavior=loader)])
        write = [w for w in inst(browser).log_for(page).cookie_writes
                 if w.cookie_name == "x"][0]
        assert write.inclusion == "indirect"
        assert write.script_domain == "child.com"

    def test_attrs_changed_expires_tolerance(self, browser):
        # Same nominal lifetime on both writes → not an expires change.
        def one(js):
            js.set_cookie(serialize_set_cookie("a", "1", domain="site.com",
                                               max_age=86400.0 * 30))

        def two(js):
            js.set_cookie(serialize_set_cookie("a", "2", domain="site.com",
                                               max_age=86400.0 * 30))

        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://a.com/1.js", behavior=one),
            Script.external("https://b.com/2.js", behavior=two)])
        overwrite = [w for w in inst(browser).log_for(page).cookie_writes
                     if w.kind == "overwrite"][0]
        assert "expires" not in overwrite.attrs_changed

    def test_unparseable_write_dropped(self, browser):
        page = browser.visit("https://site.com/", scripts=[
            Script.inline(behavior=lambda js: js.set_cookie("=no-name"))])
        assert inst(browser).log_for(page).cookie_writes == []


class TestReadLogging:
    def test_read_logged_with_names(self, browser):
        def behavior(js):
            js.set_cookie("a=1")
            js.set_cookie("b=2")
            js.get_cookie()

        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://t.com/t.js", behavior=behavior)])
        reads = inst(browser).log_for(page).cookie_reads
        assert reads[-1].cookie_names == ("a", "b")
        assert reads[-1].script_domain == "t.com"


class TestCookieStoreLogging:
    def test_cookiestore_set_logged(self, browser):
        def behavior(js):
            js.cookie_store.set("keep_alive", "uuid-here")

        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://cdn.shopifycloud.com/perf.js",
                            behavior=behavior)])
        write = [w for w in inst(browser).log_for(page).cookie_writes
                 if w.api == API_COOKIE_STORE][0]
        assert write.cookie_name == "keep_alive"
        assert write.script_domain == "shopifycloud.com"

    def test_cookiestore_get_all_logged(self, browser):
        def behavior(js):
            js.cookie_store.set("x", "1")
            js.cookie_store.get_all()

        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://a.com/a.js", behavior=behavior)])
        reads = [r for r in inst(browser).log_for(page).cookie_reads
                 if r.api == API_COOKIE_STORE]
        assert reads and "x" in reads[-1].cookie_names

    def test_cookiestore_delete_logged(self, browser):
        def behavior(js):
            js.cookie_store.set("x", "1")
            js.cookie_store.delete("x")

        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://a.com/a.js", behavior=behavior)])
        writes = [w for w in inst(browser).log_for(page).cookie_writes
                  if w.api == API_COOKIE_STORE]
        assert [w.kind for w in writes] == ["set", "delete"]


class TestHeaderLogging:
    def test_first_party_header_cookie(self):
        browser = Browser()
        browser.install(InstrumentationExtension())

        def server(request):
            headers = Headers()
            headers.add("set-cookie", "srv=1; Path=/")
            return Response(url=request.url, headers=headers)

        browser.register_server("site.com", server)
        page = browser.visit("https://site.com/")
        events = inst(browser).log_for(page).header_cookies
        assert events[0].first_party
        assert events[0].cookie_name == "srv"

    def test_httponly_header_not_logged(self):
        browser = Browser()
        browser.install(InstrumentationExtension())

        def server(request):
            headers = Headers()
            headers.add("set-cookie", "sid=1; HttpOnly")
            return Response(url=request.url, headers=headers)

        browser.register_server("site.com", server)
        page = browser.visit("https://site.com/")
        assert inst(browser).log_for(page).header_cookies == []

    def test_third_party_header_flagged(self):
        browser = Browser()
        browser.install(InstrumentationExtension())

        def server(request):
            headers = Headers()
            headers.add("set-cookie", "tp=1")
            return Response(url=request.url, headers=headers)

        browser.register_server("tracker.com", server)
        page = browser.visit("https://site.com/", scripts=[
            Script.inline(behavior=lambda js: js.fetch("https://tracker.com/x"))])
        events = inst(browser).log_for(page).header_cookies
        assert events and not events[0].first_party


class TestRequestLogging:
    def test_requests_logged_with_script_domain(self, browser):
        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://t.com/t.js",
                            behavior=lambda js: js.load_image(
                                "https://collect.t.com/px",
                                params={"k": "v"}))])
        log = inst(browser).log_for(page)
        pixel = [r for r in log.requests if r.resource_type == "image"][0]
        assert pixel.script_domain == "t.com"
        assert pixel.query == "k=v"
        assert pixel.domain == "t.com"

    def test_navigation_request_logged(self, browser):
        page = browser.visit("https://site.com/")
        log = inst(browser).log_for(page)
        assert log.requests[0].resource_type == "document"
        assert log.requests[0].script_domain is None


class TestVisitLogCompleteness:
    def test_complete_requires_both(self, browser):
        page = browser.visit("https://site.com/", scripts=[
            Script.inline(behavior=lambda js: js.set_cookie("a=1"))])
        log = inst(browser).log_for(page)
        assert log.complete  # navigation request + cookie write

    def test_message_bus_counts(self, browser):
        browser.visit("https://site.com/", scripts=[
            Script.inline(behavior=lambda js: js.set_cookie("a=1"))])
        assert inst(browser).bus.message_count > 0
