"""Shared fixtures: a small deterministic population and its crawl.

Session-scoped so the integration-heavy test modules share one crawl
instead of re-running it per test.
"""

from __future__ import annotations

import pytest

from repro.analysis import Study
from repro.crawler import CrawlConfig, Crawler
from repro.ecosystem import PopulationConfig, generate_population

SMALL_N = 400


@pytest.fixture(scope="session")
def population():
    return generate_population(PopulationConfig(n_sites=SMALL_N, seed=2025))


@pytest.fixture(scope="session")
def crawl_logs(population):
    return Crawler(population, CrawlConfig(seed=2025)).crawl()


@pytest.fixture(scope="session")
def guarded_logs(population):
    return Crawler(population, CrawlConfig(seed=2025,
                                           install_guard=True)).crawl()


@pytest.fixture(scope="session")
def study(crawl_logs):
    return Study(crawl_logs)
