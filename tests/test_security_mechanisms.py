"""§2.1 / §3 — why existing browser mechanisms don't close the gap.

The paper's motivation, executed: SOP isolates cross-origin *iframes*,
HttpOnly shields server cookies, Secure gates transport — and none of it
constrains a third-party script running in the main frame.  Plus the
``cookieStore.onchange`` surface.
"""

import pytest

from repro.browser.browser import Browser
from repro.browser.cookiestore import CookieStore
from repro.browser.events import Clock, EventLoop
from repro.browser.frames import Frame, SopViolation
from repro.browser.scripts import Script
from repro.cookies.jar import CookieJar
from repro.net.url import parse_url


class TestSopBoundary:
    """Figure 1: iframes are isolated; the main frame is not."""

    def test_cross_origin_iframe_cannot_reach_main_frame(self):
        main = Frame(parse_url("https://site.com/"))
        ad_frame = Frame(parse_url("https://ads.tracker.com/slot"),
                         parent=main)
        with pytest.raises(SopViolation):
            ad_frame.require_access(main)

    def test_main_frame_script_unrestricted(self):
        # The same tracker, embedded as a main-frame script instead of an
        # iframe, reads everything — the paper's entire premise.
        browser = Browser()
        seen = {}
        browser.visit("https://site.com/", scripts=[
            Script.inline(behavior=lambda js: js.set_cookie("secret=s3cr3t")),
            Script.external("https://ads.tracker.com/t.js",
                            behavior=lambda js: seen.update(
                                jar=js.get_cookie()))])
        assert "secret=s3cr3t" in seen["jar"]


class TestHttpOnlyShield:
    def test_session_cookie_invisible_to_all_scripts(self):
        from repro.net.headers import Headers
        from repro.net.http import Response

        def server(request):
            headers = Headers()
            headers.add("set-cookie", "sid=auth-token; HttpOnly; Path=/")
            return Response(url=request.url, headers=headers)

        browser = Browser()
        browser.register_server("site.com", server)
        seen = {}
        browser.visit("https://site.com/", scripts=[
            Script.external("https://tracker.com/t.js",
                            behavior=lambda js: seen.update(
                                jar=js.get_cookie()))])
        assert "sid" not in seen["jar"]

    def test_but_non_httponly_session_leaks(self):
        # The §8 caveat: only HttpOnly-flagged session cookies are safe.
        browser = Browser()
        seen = {}
        browser.visit("https://site.com/", scripts=[
            Script.external("https://site.com/main.js",
                            behavior=lambda js: js.set_cookie(
                                "fp_session=longsessiontoken42")),
            Script.external("https://tracker.com/t.js",
                            behavior=lambda js: seen.update(
                                jar=js.get_cookie()))])
        assert "fp_session" in seen["jar"]


class TestSecureAndScoping:
    def test_secure_cookie_not_sent_over_http(self):
        browser = Browser()
        page_https = browser.visit("https://site.com/", scripts=[
            Script.inline(behavior=lambda js: js.set_cookie("tok=x; Secure"))])
        assert page_https.jar.find("tok")
        page_http = browser.visit("http://site.com/")
        sent = page_http.network.requests[0].headers.get("cookie") or ""
        assert "tok" not in sent

    def test_third_party_http_cookies_separate_jar_entries(self):
        # Server-set third-party cookies never enter the first-party jar —
        # which is why the paper scopes to script-accessible cookies.
        from repro.net.headers import Headers
        from repro.net.http import Response

        def tracker_server(request):
            headers = Headers()
            headers.add("set-cookie", "tp_id=xyz")
            return Response(url=request.url, headers=headers)

        browser = Browser()
        browser.register_server("tracker.com", tracker_server)
        page = browser.visit("https://site.com/", scripts=[
            Script.inline(behavior=lambda js: js.fetch(
                "https://tracker.com/px"))])
        tp = page.jar.get("tp_id", "tracker.com")
        assert tp is not None
        seen = {}
        page2 = browser.visit("https://site.com/", scripts=[
            Script.inline(behavior=lambda js: seen.update(
                jar=js.get_cookie()))])
        assert "tp_id" not in seen["jar"]


class TestCookieStoreChangeEvents:
    @pytest.fixture
    def env(self):
        jar = CookieJar()
        clock = Clock()
        loop = EventLoop(clock)
        store = CookieStore(jar, parse_url("https://site.com/"), clock, loop)
        return jar, loop, store

    def test_set_fires_changed(self, env):
        _jar, loop, store = env
        events = []
        store.add_change_listener(events.append)
        store.set("k", "v")
        loop.run_until_idle()
        assert events and events[0]["changed"][0].name == "k"
        assert events[0]["deleted"] == []

    def test_delete_fires_deleted(self, env):
        _jar, loop, store = env
        events = []
        store.set("k", "v")
        store.add_change_listener(events.append)
        store.delete("k")
        loop.run_until_idle()
        assert events[0]["deleted"][0].name == "k"

    def test_document_cookie_writes_also_fire(self, env):
        jar, loop, store = env
        events = []
        store.add_change_listener(events.append)
        jar.set_from_header("a=1", parse_url("https://site.com/"),
                            from_http=False)
        loop.run_until_idle()
        assert events[0]["changed"][0].name == "a"

    def test_foreign_domain_changes_not_reported(self, env):
        jar, loop, store = env
        events = []
        store.add_change_listener(events.append)
        jar.set_from_header("other=1", parse_url("https://elsewhere.com/"))
        loop.run_until_idle()
        assert events == []

    def test_httponly_changes_not_reported(self, env):
        jar, loop, store = env
        events = []
        store.add_change_listener(events.append)
        jar.set_from_header("sid=1; HttpOnly", parse_url("https://site.com/"))
        loop.run_until_idle()
        assert events == []
