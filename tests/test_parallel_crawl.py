"""Determinism of the parallel sharded crawl engine.

The contract under test: for the same population and seed, the parallel
crawler produces *bit-for-bit* the same ``VisitLog.to_dict()`` stream as
the serial crawler (after ordering by rank), for any worker count, shard
strategy, and executor — and ``Study`` aggregation is independent of the
shard partition and merge order.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Study, StudyAccumulator
from repro.crawler import (
    CrawlConfig,
    CrawlProgress,
    Crawler,
    ParallelCrawler,
    ShardPlan,
    derive_shard_config,
)
from repro.crawler.crawler import _stable_token
from repro.crawler.parallel import print_progress


def _stream(logs):
    return [json.dumps(log.to_dict(), sort_keys=True)
            for log in sorted(logs, key=lambda log: log.rank)]


# ---------------------------------------------------------------------------
# Shard planning
# ---------------------------------------------------------------------------

class TestShardPlan:
    def test_partition_covers_all_ranks(self, population):
        plan = ShardPlan.for_population(population, 7)
        seen = [rank for shard in plan for rank in shard.ranks]
        assert sorted(seen) == sorted(s.rank for s in population.sites)
        assert len(seen) == len(set(seen))

    def test_contiguous_shards_are_rank_runs(self, population):
        plan = ShardPlan.for_population(population, 5)
        for shard in plan:
            assert list(shard.ranks) == sorted(shard.ranks)
            assert shard.ranks[-1] - shard.ranks[0] == len(shard.ranks) - 1

    def test_stride_partition_covers_all_ranks(self, population):
        plan = ShardPlan.for_population(population, 5, strategy="stride")
        seen = sorted(rank for shard in plan for rank in shard.ranks)
        assert seen == sorted(s.rank for s in population.sites)

    def test_deterministic(self, population):
        a = ShardPlan.for_population(population, 4)
        b = ShardPlan.for_population(population, 4)
        assert a == b

    def test_near_even_sizes(self, population):
        plan = ShardPlan.for_population(population, 7)
        sizes = [len(shard) for shard in plan]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_sites(self):
        plan = ShardPlan.for_ranks([1, 2, 3], 10)
        assert plan.n_shards == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ShardPlan.for_ranks([1, 2], 0)
        with pytest.raises(ValueError):
            ShardPlan.for_ranks([1, 2], 2, strategy="random")

    def test_config_derivation_keeps_seed(self):
        base = CrawlConfig(seed=77, interact=False)
        plan = ShardPlan.for_ranks(list(range(1, 11)), 3)
        for shard in plan:
            derived = derive_shard_config(base, shard)
            assert derived.seed == 77
            assert derived.interact is False
            assert derived.shard_index == shard.index
            assert derived.shard_count == 3


# ---------------------------------------------------------------------------
# Crawl determinism
# ---------------------------------------------------------------------------

class TestParallelDeterminism:
    @pytest.fixture(scope="class")
    def serial_stream(self, crawl_logs):
        return _stream(crawl_logs)

    def test_serial_executor_matches(self, population, serial_stream):
        crawler = ParallelCrawler(population, CrawlConfig(seed=2025), jobs=1)
        assert _stream(crawler.crawl(n_shards=4)) == serial_stream

    def test_two_workers_match(self, population, serial_stream):
        crawler = ParallelCrawler(population, CrawlConfig(seed=2025), jobs=2)
        assert _stream(crawler.crawl()) == serial_stream

    def test_stride_strategy_matches(self, population):
        sites = population.successful_sites()[:40]
        serial = Crawler(population, CrawlConfig(seed=2025)).crawl(sites)
        crawler = ParallelCrawler(population, CrawlConfig(seed=2025),
                                  jobs=2, strategy="stride")
        assert _stream(crawler.crawl(sites)) == _stream(serial)

    @pytest.mark.slow
    def test_four_workers_match(self, population, serial_stream):
        crawler = ParallelCrawler(population, CrawlConfig(seed=2025), jobs=4)
        assert _stream(crawler.crawl(n_shards=8)) == serial_stream

    def test_forced_process_executor_single_job(self, population):
        sites = population.successful_sites()[:12]
        serial = Crawler(population, CrawlConfig(seed=2025)).crawl(sites)
        crawler = ParallelCrawler(population, CrawlConfig(seed=2025),
                                  jobs=1, executor="process")
        assert _stream(crawler.crawl(sites, n_shards=2)) == _stream(serial)


# ---------------------------------------------------------------------------
# Study merge determinism
# ---------------------------------------------------------------------------

def _results(study: Study):
    return (study.table1(), study.table2(20), study.table5(10),
            study.figure2(20), study.figure8(20),
            study.sec51_prevalence(), study.sec52_api_usage(),
            study.sec55_overwrite_attributes(), study.sec56_inclusion(),
            study.sec8_dom_pilot())


class TestStudyMerge:
    @pytest.fixture(scope="class")
    def shards(self, crawl_logs):
        return [list(crawl_logs)[i::3] for i in range(3)]

    def test_from_shards_equals_monolithic(self, study, shards):
        assert _results(Study.from_shards(shards)) == _results(study)

    def test_shard_order_independent(self, study, shards):
        reordered = [shards[2], shards[0], shards[1]]
        assert _results(Study.from_shards(reordered)) == _results(study)

    def test_pairwise_merge_equals_monolithic(self, study, shards):
        merged = Study(shards[0]).merge(Study(shards[1])) \
                                 .merge(Study(shards[2]))
        assert _results(merged) == _results(study)

    def test_from_accumulators_without_logs(self, study, shards):
        accs = [StudyAccumulator().add_all(shard) for shard in shards]
        merged = Study.from_shards(accs)
        assert merged.logs == []
        assert merged.n_sites == study.n_sites
        assert _results(merged) == _results(study)

    def test_merged_logs_sorted_by_rank(self, study, shards):
        merged = Study.from_shards([shards[1], shards[0], shards[2]])
        ranks = [log.rank for log in merged.logs]
        assert ranks == sorted(ranks)
        assert len(ranks) == study.n_sites

    def test_overlapping_shards_rejected(self, crawl_logs):
        shard = list(crawl_logs)[:5]
        with pytest.raises(ValueError, match="overlapping"):
            Study.from_shards([shard, shard])


# ---------------------------------------------------------------------------
# Per-shard progress reporting (off by default)
# ---------------------------------------------------------------------------

class TestProgressReporting:
    def test_off_by_default(self, population):
        crawler = ParallelCrawler(population, CrawlConfig(seed=2025))
        assert crawler.progress is None

    def test_one_event_per_shard_batch(self, population):
        sites = population.sites[:24]
        events = []
        crawler = ParallelCrawler(population, CrawlConfig(seed=2025),
                                  jobs=1, progress=events.append)
        logs = crawler.crawl(sites, n_shards=3)
        assert len(events) == 3
        assert sorted(e.shard_index for e in events) == [0, 1, 2]
        assert all(isinstance(e, CrawlProgress) for e in events)
        assert all(e.n_shards == 3 for e in events)
        assert events[-1].done_shards == 3
        assert events[-1].total_visits == len(logs)
        assert sum(e.shard_visits for e in events) == len(logs)
        assert all(e.elapsed >= 0.0 for e in events)

    def test_callback_never_changes_the_output(self, population):
        sites = population.sites[:24]
        quiet = ParallelCrawler(population, CrawlConfig(seed=2025))
        noisy = ParallelCrawler(population, CrawlConfig(seed=2025),
                                jobs=1, concurrency=4,
                                progress=lambda event: None)
        assert _stream(noisy.crawl(sites, n_shards=3)) == \
            _stream(quiet.crawl(sites, n_shards=3))

    def test_print_progress_writes_one_line(self, capsys):
        print_progress(CrawlProgress(shard_index=1, n_shards=4,
                                     shard_visits=17, done_shards=2,
                                     total_visits=33, elapsed=1.25))
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "shard 1" in err and "2/4" in err and "33 visits" in err

    @pytest.mark.slow
    def test_progress_fires_across_process_pool(self, population):
        sites = population.sites[:24]
        events = []
        crawler = ParallelCrawler(population, CrawlConfig(seed=2025),
                                  jobs=2, executor="process",
                                  progress=events.append)
        logs = crawler.crawl(sites, n_shards=2)
        assert sorted(e.shard_index for e in events) == [0, 1]
        assert sum(e.shard_visits for e in events) == len(logs)


# ---------------------------------------------------------------------------
# Crawler state hygiene (the satellite bug fixes)
# ---------------------------------------------------------------------------

class TestCrawlerStateHygiene:
    def test_guards_reset_between_crawls(self, population):
        crawler = Crawler(population, CrawlConfig(install_guard=True))
        sites = population.successful_sites()[:4]
        crawler.crawl(sites)
        assert len(crawler.guards) == 4
        crawler.crawl(sites)
        assert len(crawler.guards) == 4

    def test_stable_token_is_process_independent(self):
        # Locked-in constants: blake2b is keyless and unsalted, so these
        # values cannot drift across processes or PYTHONHASHSEED values
        # (unlike the builtin hash() they replaced).
        assert _stable_token("example.com", 10**12) == 772579972710
        assert _stable_token("moc.elpmaxe", 10**10) == 1519728271

    @pytest.mark.slow
    def test_cookie_values_stable_across_hash_seeds(self):
        script = (
            "import hashlib, json\n"
            "from repro.ecosystem import PopulationConfig, generate_population\n"
            "from repro.crawler import CrawlConfig, Crawler\n"
            "pop = generate_population(PopulationConfig(n_sites=5, seed=2025))\n"
            "logs = Crawler(pop, CrawlConfig(seed=2025)).crawl(\n"
            "    keep_incomplete=True)\n"
            "stream = ''.join(json.dumps(l.to_dict(), sort_keys=True)\n"
            "                 for l in logs)\n"
            "print(len(stream), hashlib.sha256(stream.encode()).hexdigest())\n"
        )
        src = str(Path(__file__).resolve().parents[1] / "src")
        outputs = []
        for hash_seed in ("0", "424242"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": src, "PYTHONHASHSEED": hash_seed,
                     "PATH": "/usr/bin:/bin"})
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
