"""Public Suffix List and eTLD+1 extraction."""

import pytest

from repro.net.psl import (
    DEFAULT_PSL,
    PublicSuffixList,
    etld_plus_one,
    public_suffix,
    registrable_domain,
    same_site,
)


class TestPublicSuffix:
    def test_simple_tld(self):
        assert public_suffix("example.com") == "com"

    def test_subdomain(self):
        assert public_suffix("a.b.example.com") == "com"

    def test_second_level_suffix(self):
        assert public_suffix("example.co.uk") == "co.uk"

    def test_bare_suffix(self):
        assert public_suffix("co.uk") == "co.uk"

    def test_unknown_tld_defaults_to_last_label(self):
        assert public_suffix("example.zz") == "zz"

    def test_platform_suffix(self):
        assert public_suffix("mysite.github.io") == "github.io"

    def test_case_insensitive(self):
        assert public_suffix("EXAMPLE.COM") == "com"

    def test_trailing_dot(self):
        assert public_suffix("example.com.") == "com"

    def test_empty_host(self):
        assert public_suffix("") is None

    def test_ipv4_has_no_suffix(self):
        assert public_suffix("192.168.1.1") is None

    def test_ipv6_has_no_suffix(self):
        assert public_suffix("[2001:db8::1]") is None


class TestWildcardAndException:
    def test_wildcard_rule(self):
        # "*.bd" — any label under .bd is a public suffix.
        assert public_suffix("example.com.bd") == "com.bd"

    def test_wildcard_registrable(self):
        assert registrable_domain("www.example.com.bd") == "example.com.bd"

    def test_exception_rule(self):
        # "!www.ck" overrides "*.ck".
        assert public_suffix("www.ck") == "ck"

    def test_exception_registrable(self):
        assert registrable_domain("www.ck") == "www.ck"

    def test_wildcard_ck(self):
        assert public_suffix("foo.other.ck") == "other.ck"


class TestRegistrableDomain:
    @pytest.mark.parametrize("host,expected", [
        ("example.com", "example.com"),
        ("www.example.com", "example.com"),
        ("a.b.c.example.com", "example.com"),
        ("example.co.uk", "example.co.uk"),
        ("www.example.co.uk", "example.co.uk"),
        ("cdn.shopifycloud.com", "shopifycloud.com"),
        ("snap.licdn.com", "licdn.com"),
        ("bat.bing.com", "bing.com"),
        ("s.yimg.jp", "yimg.jp"),
        ("mc.yandex.ru", "yandex.ru"),
    ])
    def test_known_hosts(self, host, expected):
        assert registrable_domain(host) == expected

    def test_bare_suffix_has_no_registrable(self):
        assert registrable_domain("com") is None
        assert registrable_domain("co.uk") is None

    def test_ip_is_its_own_domain(self):
        assert registrable_domain("10.0.0.1") == "10.0.0.1"

    def test_etld_plus_one_alias(self):
        assert etld_plus_one is registrable_domain

    def test_empty(self):
        assert registrable_domain("") is None

    def test_cloudfront_is_registrable(self):
        # Deliberately NOT a suffix here: the paper attributes scripts to
        # cloudfront.net as a domain (Figure 2).
        assert registrable_domain("d123.cloudfront.net") == "cloudfront.net"


class TestSameSite:
    def test_same_site_subdomains(self):
        assert same_site("www.example.com", "cdn.example.com")

    def test_different_sites(self):
        assert not same_site("example.com", "example.org")

    def test_suffix_not_same_site(self):
        assert not same_site("a.co.uk", "b.co.uk")

    def test_identical(self):
        assert same_site("example.com", "example.com")

    def test_facebook_fbcdn_not_same_site(self):
        # Same entity (Meta) but different eTLD+1 — the Table 3
        # functionality-breakage case relies on this distinction.
        assert not same_site("facebook.com", "fbcdn.net")


class TestCustomRules:
    def test_custom_list(self):
        psl = PublicSuffixList(["com", "foo.com"])
        assert psl.public_suffix("a.foo.com") == "foo.com"
        assert psl.registrable_domain("a.b.foo.com") == "b.foo.com"

    def test_comments_skipped(self):
        psl = PublicSuffixList(["// comment", "com"])
        assert psl.public_suffix("x.com") == "com"

    def test_longest_rule_wins(self):
        psl = PublicSuffixList(["com", "foo.com", "bar.foo.com"])
        assert psl.public_suffix("x.bar.foo.com") == "bar.foo.com"

    def test_is_ip_detection(self):
        assert DEFAULT_PSL.is_ip("127.0.0.1")
        assert DEFAULT_PSL.is_ip("::1")
        assert not DEFAULT_PSL.is_ip("1.2.3.com")
        assert not DEFAULT_PSL.is_ip("999.com")
