"""Page-load timing model."""

import numpy as np
import pytest

from repro.browser.timing import PageLoadModel, PageTimings, TimingConfig


@pytest.fixture
def model():
    return PageLoadModel()


class TestPageLoadModel:
    def test_deterministic_given_seed(self, model):
        a = model.sample_pair(np.random.default_rng(7), cookie_ops=50)
        b = model.sample_pair(np.random.default_rng(7), cookie_ops=50)
        assert a == b

    def test_stage_ordering(self, model):
        rng = np.random.default_rng(1)
        for _ in range(200):
            timings = model.sample(rng, latent=1.0)
            assert timings.dom_interactive <= timings.dom_content_loaded
            assert timings.dom_content_loaded < timings.load_event

    def test_all_positive(self, model):
        rng = np.random.default_rng(2)
        for _ in range(200):
            timings = model.sample(rng, latent=model.site_latent(rng))
            assert timings.dom_interactive > 0

    def test_overhead_increases_with_cookie_ops(self, model):
        rng = np.random.default_rng(3)
        small = np.mean([model.extension_overhead_ms(rng, 10)
                         for _ in range(500)])
        big = np.mean([model.extension_overhead_ms(rng, 500)
                       for _ in range(500)])
        assert big > small * 3

    def test_guarded_slower_on_average(self, model):
        rng = np.random.default_rng(4)
        deltas = []
        for _ in range(400):
            normal, guarded = model.sample_pair(rng, cookie_ops=100)
            deltas.append(guarded.load_event - normal.load_event)
        assert np.mean(deltas) > 0

    def test_median_interactive_near_calibration(self, model):
        rng = np.random.default_rng(5)
        samples = [model.sample(rng, latent=model.site_latent(rng)).dom_interactive
                   for _ in range(4000)]
        median = np.median(samples)
        assert 500 < median < 1400  # calibrated around 842 ms

    def test_heavy_tail(self, model):
        rng = np.random.default_rng(6)
        samples = np.array([
            model.sample(rng, latent=model.site_latent(rng)).load_event
            for _ in range(4000)])
        assert samples.mean() > np.median(samples) * 1.3

    def test_script_cost_raises_load(self):
        model = PageLoadModel()
        rng_a = np.random.default_rng(8)
        rng_b = np.random.default_rng(8)
        bare = model.sample(rng_a, latent=1.0, n_third_party_scripts=0)
        busy = model.sample(rng_b, latent=1.0, n_third_party_scripts=40)
        assert busy.load_event > bare.load_event

    def test_custom_config(self):
        config = TimingConfig(interactive_median_ms=100.0, site_sigma=0.01,
                              visit_sigma=0.01, stall_probability=0.0)
        model = PageLoadModel(config)
        rng = np.random.default_rng(9)
        samples = [model.sample(rng, latent=1.0).dom_interactive
                   for _ in range(200)]
        assert 80 < np.median(samples) < 125

    def test_as_dict(self):
        timings = PageTimings(1.0, 2.0, 3.0)
        assert timings.as_dict() == {"dom_content_loaded": 1.0,
                                     "dom_interactive": 2.0,
                                     "load_event": 3.0}
