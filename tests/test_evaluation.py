"""Evaluation harness: Figure 5, Table 3, Table 4, DOM pilot, boxplots."""

import numpy as np
import pytest

from repro.evaluation.access_control import evaluate_access_control
from repro.evaluation.breakage import CATEGORIES, evaluate_breakage
from repro.evaluation.dompilot import evaluate_dom_pilot
from repro.evaluation.performance import (
    METRICS,
    evaluate_performance,
    paired_timings_from_logs,
)
from repro.stats.boxplot import BoxplotStats


@pytest.fixture(scope="module")
def access_eval(population):
    sample = population.sites[:150]
    return evaluate_access_control(population, sample)


class TestFigure5:
    def test_guard_reduces_every_action(self, access_eval):
        for row in access_eval.rows:
            assert row.pct_sites_guarded < row.pct_sites_regular

    def test_reductions_in_paper_band(self, access_eval):
        for row in access_eval.rows:
            assert 60.0 <= row.reduction_pct <= 100.0

    def test_residual_from_owner_scripts(self, access_eval):
        # The guard's residual comes from first-party scripts: verify the
        # guarded crawl's remaining cross-domain actors are the sites
        # themselves.
        from repro.analysis.attribution import detect_manipulations
        for log in access_eval.guarded_logs:
            for action in detect_manipulations(log):
                assert action.actor == log.site

    def test_render(self, access_eval):
        text = access_eval.render()
        assert "overwriting" in text and "reduction" in text

    def test_zero_regular_gives_zero_reduction(self):
        from repro.evaluation.access_control import Figure5Row
        assert Figure5Row("x", 0.0, 0.0).reduction_pct == 0.0


class TestTable3:
    def test_nav_and_appearance_never_break(self, population):
        table = evaluate_breakage(population, sample_size=60, top_k=400)
        assert table.minor["navigation"] == 0.0
        assert table.major["navigation"] == 0.0
        assert table.minor["appearance"] == 0.0
        assert table.major["appearance"] == 0.0

    def test_sso_breaks_without_whitelist(self, population):
        table = evaluate_breakage(population, sample_size=80, top_k=400)
        assert table.pct_sites_sso_broken > 3.0

    def test_whitelist_reduces_sso_breakage(self, population):
        plain = evaluate_breakage(population, sample_size=80, top_k=400)
        whitelisted = evaluate_breakage(population, sample_size=80, top_k=400,
                                        use_entity_whitelist=True)
        assert whitelisted.pct_sites_sso_broken < plain.pct_sites_sso_broken

    def test_same_domain_sso_never_breaks(self, population):
        sso_sites = [s for s in population.successful_sites()
                     if s.sso is not None
                     and s.sso.setter_key == s.sso.reader_key]
        if not sso_sites:
            pytest.skip("no same-domain SSO site in sample")
        table = evaluate_breakage(population, sites=sso_sites[:10])
        assert table.pct_sites_sso_broken == 0.0

    def test_cross_provider_sso_always_breaks_without_whitelist(self, population):
        sso_sites = [s for s in population.successful_sites()
                     if s.sso is not None
                     and s.sso.setter_key != s.sso.reader_key]
        if not sso_sites:
            pytest.skip("no cross-domain SSO site in sample")
        table = evaluate_breakage(population, sites=sso_sites[:10])
        assert table.pct_sites_sso_broken == 100.0

    def test_results_recorded_per_site(self, population):
        table = evaluate_breakage(population, sample_size=20, top_k=400)
        assert len(table.results) == table.n_sites
        for result in table.results:
            assert set(result.outcomes) == set(CATEGORIES)

    def test_render(self, population):
        table = evaluate_breakage(population, sample_size=20, top_k=400)
        assert "Minor" in table.render() and "Major" in table.render()


class TestTable4:
    @pytest.fixture(scope="class")
    def report(self, crawl_logs):
        return paired_timings_from_logs(crawl_logs, seed=2025)

    @pytest.fixture(scope="class")
    def low_noise_report(self, crawl_logs):
        # Visit noise is huge relative to the overhead (the paper had
        # 8,171 pairs; this fixture has a few hundred), so mean-shift
        # assertions use a low-noise model while distribution-shape
        # assertions keep the realistic one.
        from repro.browser.timing import PageLoadModel, TimingConfig
        model = PageLoadModel(TimingConfig(visit_sigma=0.03,
                                           stall_probability=0.0,
                                           overhead_spike_probability=0.0))
        return paired_timings_from_logs(crawl_logs, model=model, seed=2025)

    def test_guard_slower_in_all_metrics(self, low_noise_report):
        table = low_noise_report.table4()
        for metric in METRICS:
            assert table[metric]["guard_mean"] > table[metric]["normal_mean"]
            assert table[metric]["guard_median"] > table[metric]["normal_median"]

    def test_heavy_tails(self, report):
        table = report.table4()
        for metric in METRICS:
            assert table[metric]["normal_mean"] > \
                table[metric]["normal_median"] * 1.2

    def test_pairing_loss_applied(self, report, crawl_logs):
        assert report.n_sites < len(crawl_logs)

    def test_median_ratios_modest(self, report):
        for metric, ratio in report.median_ratios().items():
            assert 1.02 < ratio < 1.35  # paper: 1.108–1.122

    def test_mean_overhead_sub_second(self, low_noise_report):
        assert 0 < low_noise_report.mean_overhead_ms() < 1000  # paper: ~300 ms

    def test_boxplots_shift_up(self, report):
        for metric, pair in report.boxplots().items():
            assert pair["with_extension"].median > pair["no_extension"].median

    def test_ratio_outliers_exist(self, report):
        stats = report.ratio_stats()
        assert any(s.n_outliers_high > 0 for s in stats.values())

    def test_renderers(self, report):
        assert "DOM Content Loaded" in report.render_table4()
        assert "1." in report.render_ratios()

    def test_evaluate_performance_wrapper(self, population, crawl_logs):
        report = evaluate_performance(population, logs=crawl_logs)
        assert report.n_sites > 0


class TestDomPilot:
    def test_prevalence_near_paper(self, crawl_logs):
        report = evaluate_dom_pilot(crawl_logs)
        assert 2.0 < report.pct_sites < 20.0  # paper: 9.4%

    def test_kind_breakdown(self, crawl_logs):
        report = evaluate_dom_pilot(crawl_logs)
        assert report.mutations_by_kind
        assert set(report.mutations_by_kind) <= {
            "insert", "remove", "set_attribute", "set_text", "set_style"}

    def test_render(self, crawl_logs):
        assert "%" in evaluate_dom_pilot(crawl_logs).render()


class TestBoxplotStats:
    def test_five_number_summary(self):
        stats = BoxplotStats.from_samples(range(1, 101))
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.n == 100

    def test_whiskers_clamped_to_data(self):
        stats = BoxplotStats.from_samples([1, 2, 3, 4, 5])
        assert stats.whisker_low == 1
        assert stats.whisker_high == 5
        assert stats.n_outliers_low == 0

    def test_outliers_detected(self):
        data = [10.0] * 50 + [11.0] * 50 + [500.0]
        stats = BoxplotStats.from_samples(data)
        assert stats.n_outliers_high == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            BoxplotStats.from_samples([])

    def test_iqr(self):
        stats = BoxplotStats.from_samples(range(1, 101))
        assert stats.iqr == pytest.approx(stats.q3 - stats.q1)

    def test_render(self):
        assert "median" in BoxplotStats.from_samples([1, 2, 3]).render("x")
