"""Edge cases of the shared CLI flag parser (``repro.cliutil``).

Every consumer (``python -m repro``, the example/benchmark scripts, and
``scripts/full_scale_run.py``) funnels through these four functions, so
the conventions — last-occurrence-wins repeats, ``--`` passthrough,
minimum validation for ``--jobs``/``--concurrency`` — are locked in
here once.
"""

from __future__ import annotations

import pytest

from repro.cliutil import (
    pop_choice_flag,
    pop_flag,
    pop_float_flag,
    pop_int_flag,
    pop_switch,
    reject_unknown_flags,
)


class TestPopFlag:
    def test_space_and_equals_forms(self):
        args = ["--jobs", "4", "rest"]
        assert pop_flag(args, "--jobs") == "4"
        assert args == ["rest"]
        args = ["--jobs=7", "rest"]
        assert pop_flag(args, "--jobs") == "7"
        assert args == ["rest"]

    def test_missing_flag_returns_none(self):
        args = ["100", "out.jsonl"]
        assert pop_flag(args, "--jobs") is None
        assert args == ["100", "out.jsonl"]

    def test_repeated_flag_last_wins(self):
        args = ["--jobs", "2", "100", "--jobs=8"]
        assert pop_flag(args, "--jobs") == "8"
        assert args == ["100"]

    def test_repeated_mixed_forms_last_wins(self):
        args = ["--jobs=3", "--jobs", "5"]
        assert pop_flag(args, "--jobs") == "5"
        assert args == []

    def test_missing_value_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            pop_flag(["--jobs"], "--jobs")
        assert exc.value.code == 2

    def test_value_cannot_be_the_passthrough_marker(self):
        with pytest.raises(SystemExit) as exc:
            pop_flag(["--jobs", "--", "positional"], "--jobs")
        assert exc.value.code == 2

    def test_flag_after_double_dash_is_positional(self):
        args = ["--jobs", "2", "--", "--jobs", "9"]
        assert pop_flag(args, "--jobs") == "2"
        assert args == ["--", "--jobs", "9"]


class TestPopIntFlag:
    def test_default_when_absent(self):
        assert pop_int_flag([], "--jobs", 1, minimum=1) == 1

    def test_parses_value(self):
        args = ["--concurrency", "16"]
        assert pop_int_flag(args, "--concurrency", 1, minimum=1) == 16
        assert args == []

    def test_non_integer_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            pop_int_flag(["--concurrency", "many"], "--concurrency", 1)
        assert exc.value.code == 2

    def test_zero_below_minimum_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            pop_int_flag(["--jobs", "0"], "--jobs", 1, minimum=1)
        assert exc.value.code == 2

    def test_negative_below_minimum_exits_2(self):
        for flag, raw in (("--jobs", "-2"), ("--concurrency", "-64")):
            with pytest.raises(SystemExit) as exc:
                pop_int_flag([flag, raw], flag, 1, minimum=1)
            assert exc.value.code == 2

    def test_negative_allowed_without_minimum(self):
        assert pop_int_flag(["--offset", "-5"], "--offset", 0) == -5

    def test_repeated_validates_the_winning_value(self):
        args = ["--concurrency", "0", "--concurrency", "4"]
        assert pop_int_flag(args, "--concurrency", 1, minimum=1) == 4


class TestPopSwitch:
    def test_present_and_absent(self):
        args = ["--gzip", "100"]
        assert pop_switch(args, "--gzip") is True
        assert args == ["100"]
        assert pop_switch(args, "--gzip") is False

    def test_repeated_switch_fully_consumed(self):
        args = ["--progress", "100", "--progress"]
        assert pop_switch(args, "--progress") is True
        assert args == ["100"]

    def test_switch_after_double_dash_is_positional(self):
        args = ["--", "--gzip"]
        assert pop_switch(args, "--gzip") is False
        assert args == ["--", "--gzip"]


class TestRejectUnknownFlags:
    def test_clean_args_pass(self):
        args = ["100", "out.jsonl"]
        reject_unknown_flags(args)
        assert args == ["100", "out.jsonl"]

    def test_unknown_flag_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            reject_unknown_flags(["--typo", "100"])
        assert exc.value.code == 2

    def test_double_dash_passthrough(self):
        # ``crawl -- -1``: the -1 is positional, not a flag typo.
        args = ["--", "-1", "--not-a-flag"]
        reject_unknown_flags(args)
        assert args == ["-1", "--not-a-flag"]

    def test_flags_before_marker_still_rejected(self):
        with pytest.raises(SystemExit) as exc:
            reject_unknown_flags(["--typo", "--", "-1"])
        assert exc.value.code == 2


class TestPopChoiceFlag:
    CHOICES = ["inprocess", "pool", "subprocess"]

    def test_absent_returns_default(self):
        assert pop_choice_flag([], "--backend", self.CHOICES) is None
        assert pop_choice_flag([], "--backend", self.CHOICES,
                               default="pool") == "pool"

    def test_valid_choice_extracted(self):
        args = ["--backend", "pool", "120"]
        assert pop_choice_flag(args, "--backend", self.CHOICES) == "pool"
        assert args == ["120"]

    def test_equals_form(self):
        args = ["--backend=subprocess"]
        assert pop_choice_flag(args, "--backend",
                               self.CHOICES) == "subprocess"

    def test_invalid_choice_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            pop_choice_flag(["--backend", "cluster"], "--backend",
                            self.CHOICES)
        assert exc.value.code == 2

    def test_repeated_validates_the_winning_value(self):
        args = ["--backend", "cluster", "--backend", "pool"]
        assert pop_choice_flag(args, "--backend", self.CHOICES) == "pool"

    def test_choice_after_double_dash_is_positional(self):
        args = ["--", "--backend", "pool"]
        assert pop_choice_flag(args, "--backend", self.CHOICES) is None
        assert args == ["--", "--backend", "pool"]


class TestEndToEndParse:
    def test_crawl_style_parse(self):
        """The exact sequence ``_run_crawl`` performs."""
        args = ["--jobs", "2", "--concurrency=16", "--gzip", "120",
                "--progress", "--", "out dir"]
        assert pop_int_flag(args, "--jobs", 1, minimum=1) == 2
        assert pop_int_flag(args, "--concurrency", 1, minimum=1) == 16
        assert pop_int_flag(args, "--shards", 0, minimum=1) == 0
        assert pop_switch(args, "--gzip") is True
        assert pop_switch(args, "--progress") is True
        reject_unknown_flags(args)
        assert args == ["120", "out dir"]

    def test_distributed_crawl_style_parse(self):
        """The distributed variant: backend, cache dir, retries."""
        args = ["--backend=pool", "--cache-dir", "shard-cache",
                "--max-retries", "3", "--shards", "4", "200", "out"]
        assert pop_int_flag(args, "--jobs", 1, minimum=1) == 1
        assert pop_int_flag(args, "--shards", 0, minimum=1) == 4
        assert pop_choice_flag(args, "--backend",
                               ["inprocess", "pool", "subprocess"]) == "pool"
        assert pop_flag(args, "--cache-dir") == "shard-cache"
        assert pop_int_flag(args, "--max-retries", 2, minimum=0) == 3
        reject_unknown_flags(args)
        assert args == ["200", "out"]

    def test_negative_max_retries_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            pop_int_flag(["--max-retries", "-1"], "--max-retries", 2,
                         minimum=0)
        assert exc.value.code == 2


class TestPopFloatFlag:
    def test_default_when_absent(self):
        assert pop_float_flag([], "--task-timeout") is None
        assert pop_float_flag([], "--store-backoff", 0.1) == 0.1

    def test_parses_value(self):
        args = ["--task-timeout", "90.5", "run"]
        assert pop_float_flag(args, "--task-timeout") == 90.5
        assert args == ["run"]

    def test_accepts_integer_literals(self):
        assert pop_float_flag(["--task-timeout=120"],
                              "--task-timeout") == 120.0

    def test_non_number_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            pop_float_flag(["--task-timeout", "soon"], "--task-timeout")
        assert exc.value.code == 2

    def test_below_minimum_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            pop_float_flag(["--store-backoff", "-0.5"],
                           "--store-backoff", 0.1, minimum=0)
        assert exc.value.code == 2

    def test_inclusive_minimum_admits_the_bound(self):
        assert pop_float_flag(["--store-backoff", "0"],
                              "--store-backoff", 0.1, minimum=0) == 0.0

    def test_exclusive_minimum_rejects_the_bound(self):
        # A task timeout of exactly zero would kill every worker at
        # spawn; the bound itself must be refused.
        with pytest.raises(SystemExit) as exc:
            pop_float_flag(["--task-timeout", "0"], "--task-timeout",
                           minimum=0, exclusive_minimum=True)
        assert exc.value.code == 2

    def test_repeated_last_wins(self):
        args = ["--task-timeout", "5", "--task-timeout", "30"]
        assert pop_float_flag(args, "--task-timeout") == 30.0
        assert args == []
