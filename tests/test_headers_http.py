"""HTTP headers multimap and request/response primitives."""

from repro.net.headers import Headers
from repro.net.http import Request, Response, ResourceType
from repro.net.url import parse_url


class TestHeaders:
    def test_add_and_get(self):
        headers = Headers()
        headers.add("Content-Type", "text/html")
        assert headers.get("content-type") == "text/html"

    def test_case_insensitive(self):
        headers = Headers([("X-Foo", "1")])
        assert headers.get("x-foo") == "1"
        assert "X-FOO" in headers

    def test_multiple_set_cookie_kept_separate(self):
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("Set-Cookie", "b=2; Path=/")
        assert headers.get_all("set-cookie") == ["a=1", "b=2; Path=/"]

    def test_get_returns_first(self):
        headers = Headers([("k", "1"), ("k", "2")])
        assert headers.get("k") == "1"

    def test_get_default(self):
        assert Headers().get("missing", "d") == "d"

    def test_set_replaces_all(self):
        headers = Headers([("k", "1"), ("k", "2")])
        headers.set("k", "3")
        assert headers.get_all("k") == ["3"]

    def test_remove(self):
        headers = Headers([("k", "1"), ("other", "x")])
        headers.remove("k")
        assert "k" not in headers
        assert "other" in headers

    def test_len_and_iter(self):
        headers = Headers([("a", "1"), ("b", "2")])
        assert len(headers) == 2
        assert list(headers) == [("a", "1"), ("b", "2")]

    def test_copy_is_independent(self):
        original = Headers([("a", "1")])
        clone = original.copy()
        clone.add("b", "2")
        assert "b" not in original

    def test_to_dict(self):
        headers = Headers([("a", "1"), ("a", "2")])
        assert headers.to_dict() == {"a": ["1", "2"]}

    def test_equality(self):
        assert Headers([("a", "1")]) == Headers([("a", "1")])
        assert Headers([("a", "1")]) != Headers([("a", "2")])

    def test_values_stripped(self):
        headers = Headers()
        headers.add("k", "  padded  ")
        assert headers.get("k") == "padded"


class TestRequestResponse:
    def test_request_ids_unique(self):
        url = parse_url("https://example.com/")
        a = Request(url=url)
        b = Request(url=url)
        assert a.request_id != b.request_id

    def test_navigation_flag(self):
        url = parse_url("https://example.com/")
        assert Request(url=url, resource_type=ResourceType.DOCUMENT).is_navigation
        assert not Request(url=url, resource_type=ResourceType.SCRIPT).is_navigation

    def test_response_ok(self):
        url = parse_url("https://example.com/")
        assert Response(url=url, status=204).ok
        assert not Response(url=url, status=404).ok

    def test_set_cookie_headers(self):
        url = parse_url("https://example.com/")
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("set-cookie", "b=2")
        response = Response(url=url, headers=headers)
        assert response.set_cookie_headers() == ["a=1", "b=2"]

    def test_resource_type_values(self):
        assert ResourceType.SCRIPT.value == "script"
        assert ResourceType.BEACON.value == "beacon"
