"""Entity consolidation (Tracker Radar substitute)."""

from repro.analysis.entities import EntityMap, default_entity_map


class TestEntityMap:
    def test_catalog_services_mapped(self):
        entities = default_entity_map()
        assert entities.entity_of("googletagmanager.com") == "Google"
        assert entities.entity_of("facebook.net") == "Meta"
        assert entities.entity_of("cdn-cookieyes.com") == "CookieYes"

    def test_host_normalized_to_etld1(self):
        entities = default_entity_map()
        assert entities.entity_of("bat.bing.com") == "Microsoft"
        assert entities.entity_of("snap.licdn.com") == "LinkedIn"

    def test_corporate_groupings(self):
        entities = default_entity_map()
        assert entities.same_entity("facebook.com", "fbcdn.net")
        assert entities.same_entity("microsoft.com", "live.com")
        assert entities.same_entity("criteo.com", "criteo.net")
        assert entities.same_entity("hubspot.com", "hsforms.net")

    def test_cross_entity(self):
        entities = default_entity_map()
        assert not entities.same_entity("facebook.com", "criteo.com")

    def test_unknown_falls_back_to_domain(self):
        entities = default_entity_map()
        assert entities.entity_of("totally-unknown.example") == \
            "totally-unknown.example"
        assert entities.same_entity("sub.unknown.example", "unknown.example")

    def test_none_input(self):
        entities = default_entity_map()
        assert entities.entity_of(None) is None
        assert not entities.same_entity(None, "x.com")

    def test_known_check(self):
        entities = default_entity_map()
        assert entities.known("googletagmanager.com")
        assert not entities.known("nope.example")

    def test_custom_map(self):
        entities = EntityMap({"a.com": "A", "b.com": "A"})
        assert entities.same_entity("a.com", "b.com")
        assert len(entities) == 2

    def test_destination_only_entities(self):
        entities = default_entity_map()
        assert entities.entity_of("magnite.com") == "Magnite"
        assert entities.entity_of("airbnb.com") == "Airbnb"
