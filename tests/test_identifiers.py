"""Identifier format generators."""

import numpy as np
import pytest

from repro.ecosystem.identifiers import IdFactory


@pytest.fixture
def ids():
    return IdFactory(np.random.default_rng(42))


class TestFormats:
    def test_ga_client_id_format(self, ids):
        value = ids.ga_client_id()
        parts = value.split(".")
        assert parts[0] == "GA1"
        assert parts[1] == "1"
        assert len(parts[2]) == 9 and parts[2].isdigit()
        assert parts[3].isdigit()

    def test_fbp_format(self, ids):
        parts = ids.fbp().split(".")
        assert parts[0] == "fb"
        assert parts[1] == "1"
        assert len(parts[3]) == 18

    def test_awl_format(self, ids):
        count, ts, session = ids.awl().split(".")
        assert count.isdigit() and ts.isdigit()
        assert len(session) == 16

    def test_us_privacy_has_detectable_segment(self, ids):
        # IAB string + timestamp — the suffix is ≥8 alnum chars, which is
        # what makes Table 2's consent-signal row detectable.
        value = ids.us_privacy()
        assert value.startswith("1Y")
        assert any(len(seg) >= 8 for seg in value.split("."))

    def test_uuid_shape(self, ids):
        parts = ids.uuid().split("-")
        assert [len(p) for p in parts] == [8, 4, 4, 4, 12]

    def test_optanon_consent_fields(self, ids):
        value = ids.optanon_consent()
        assert "consentId=" in value and "groups=" in value

    def test_utma_fields(self, ids):
        assert len(ids.utma().split(".")) == 6

    def test_mkto_trk(self, ids):
        assert ids.mkto_trk().startswith("id:")

    def test_short_flag_below_threshold(self, ids):
        assert len(ids.short_flag()) < 8

    def test_session_token_long(self, ids):
        assert len(ids.session_token()) == 40

    def test_hex32(self, ids):
        value = ids.hex_32()
        assert len(value) == 32
        assert all(c in "0123456789abcdef" for c in value)

    def test_utag_main(self, ids):
        assert ids.utag_main().startswith("v_id:")

    def test_generic_id_custom_length(self, ids):
        assert len(ids.generic_id(50)) == 50

    def test_timestamps_plausible(self, ids):
        assert ids.timestamp() > 1_700_000_000
        assert ids.timestamp_ms() > 1_700_000_000_000


class TestDeterminism:
    def test_same_seed_same_values(self):
        a = IdFactory(np.random.default_rng(7))
        b = IdFactory(np.random.default_rng(7))
        assert a.ga_client_id() == b.ga_client_id()
        assert a.fbp() == b.fbp()

    def test_different_seeds_differ(self):
        a = IdFactory(np.random.default_rng(1))
        b = IdFactory(np.random.default_rng(2))
        assert a.uuid() != b.uuid()
