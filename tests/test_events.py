"""Event loop, microtasks, timers, and promises."""

import pytest

from repro.browser.events import Clock, EventLoop, Promise


class TestClock:
    def test_advance(self):
        clock = Clock()
        clock.advance(5.0)
        assert clock.now() == 5.0

    def test_no_backwards(self):
        with pytest.raises(ValueError):
            Clock().advance(-1)


class TestEventLoop:
    def test_tasks_run_in_order(self):
        loop = EventLoop()
        order = []
        loop.queue_task(lambda: order.append(1))
        loop.queue_task(lambda: order.append(2))
        loop.run_until_idle()
        assert order == [1, 2]

    def test_microtasks_before_tasks(self):
        loop = EventLoop()
        order = []
        loop.queue_task(lambda: order.append("task"))
        loop.queue_microtask(lambda: order.append("micro"))
        loop.run_until_idle()
        assert order == ["micro", "task"]

    def test_microtasks_drain_between_tasks(self):
        loop = EventLoop()
        order = []

        def task_one():
            order.append("t1")
            loop.queue_microtask(lambda: order.append("m1"))

        loop.queue_task(task_one)
        loop.queue_task(lambda: order.append("t2"))
        loop.run_until_idle()
        assert order == ["t1", "m1", "t2"]

    def test_timers_advance_clock(self):
        loop = EventLoop()
        fired = []
        loop.set_timeout(lambda: fired.append(loop.clock.now()), 2.5)
        loop.run_until_idle()
        assert fired == [2.5]

    def test_timers_fire_in_due_order(self):
        loop = EventLoop()
        order = []
        loop.set_timeout(lambda: order.append("late"), 5.0)
        loop.set_timeout(lambda: order.append("early"), 1.0)
        loop.run_until_idle()
        assert order == ["early", "late"]

    def test_equal_due_preserves_insertion_order(self):
        loop = EventLoop()
        order = []
        loop.set_timeout(lambda: order.append(1), 1.0)
        loop.set_timeout(lambda: order.append(2), 1.0)
        loop.run_until_idle()
        assert order == [1, 2]

    def test_clear_timeout(self):
        loop = EventLoop()
        fired = []
        timer = loop.set_timeout(lambda: fired.append(1), 1.0)
        loop.clear_timeout(timer)
        loop.run_until_idle()
        assert fired == []

    def test_pending_property(self):
        loop = EventLoop()
        assert not loop.pending
        loop.queue_task(lambda: None)
        assert loop.pending
        loop.run_until_idle()
        assert not loop.pending

    def test_max_time_bound(self):
        loop = EventLoop()
        fired = []
        loop.set_timeout(lambda: fired.append(1), 10_000.0)
        loop.run_until_idle(max_time=100.0)
        assert fired == []

    def test_microtask_storm_detected(self):
        loop = EventLoop()

        def spawn():
            loop.queue_microtask(spawn)

        loop.queue_microtask(spawn)
        with pytest.raises(RuntimeError):
            loop.run_until_idle()

    def test_timer_callbacks_can_schedule(self):
        loop = EventLoop()
        order = []
        loop.set_timeout(
            lambda: (order.append("a"),
                     loop.set_timeout(lambda: order.append("b"), 1.0)), 1.0)
        loop.run_until_idle()
        assert order == ["a", "b"]


class TestPromise:
    def test_resolve_then(self):
        loop = EventLoop()
        promise = Promise(loop)
        got = []
        promise.then(got.append)
        promise.resolve(42)
        loop.run_until_idle()
        assert got == [42]

    def test_then_after_settled(self):
        loop = EventLoop()
        promise = Promise(loop)
        promise.resolve("x")
        got = []
        promise.then(got.append)
        loop.run_until_idle()
        assert got == ["x"]

    def test_chaining(self):
        loop = EventLoop()
        promise = Promise(loop)
        got = []
        promise.then(lambda v: v + 1).then(got.append)
        promise.resolve(1)
        loop.run_until_idle()
        assert got == [2]

    def test_rejection_propagates(self):
        loop = EventLoop()
        promise = Promise(loop)
        errors = []
        promise.then(lambda v: v).then(None, lambda e: errors.append(str(e)))
        promise.reject(RuntimeError("boom"))
        loop.run_until_idle()
        assert errors == ["boom"]

    def test_handler_exception_rejects_chain(self):
        loop = EventLoop()
        promise = Promise(loop)
        errors = []

        def bad(_):
            raise ValueError("bad handler")

        promise.then(bad).then(None, lambda e: errors.append(type(e).__name__))
        promise.resolve(1)
        loop.run_until_idle()
        assert errors == ["ValueError"]

    def test_result_raises_when_pending(self):
        promise = Promise(EventLoop())
        with pytest.raises(RuntimeError):
            promise.result()

    def test_result_raises_rejection(self):
        loop = EventLoop()
        promise = Promise(loop)
        promise.reject(ValueError("nope"))
        with pytest.raises(ValueError):
            promise.result()

    def test_double_settle_ignored(self):
        loop = EventLoop()
        promise = Promise(loop)
        promise.resolve(1)
        promise.resolve(2)
        assert promise.result() == 1
