"""Sharded crawl-dataset storage: round-trips, streaming, manifest errors."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Study
from repro.crawler import (
    CrawlConfig,
    ManifestError,
    ParallelCrawler,
    ShardManifest,
    iter_logs,
    load_logs,
    save_logs,
)
from repro.crawler.storage import (MANIFEST_NAME, compute_digest, load_shard,
                                   shard_filename, verify_shard_files,
                                   write_shard)


def _stream(logs):
    return [json.dumps(log.to_dict(), sort_keys=True)
            for log in sorted(logs, key=lambda log: log.rank)]


@pytest.fixture()
def sharded_dir(crawl_logs, tmp_path):
    directory = tmp_path / "crawl"
    save_logs(crawl_logs, directory, shards=4)
    return directory


class TestShardedRoundTrip:
    @pytest.mark.parametrize("compress", [False, True],
                             ids=["plain", "gzip"])
    def test_save_load_identical(self, crawl_logs, tmp_path, compress):
        directory = tmp_path / "crawl"
        written = save_logs(crawl_logs, directory, shards=3,
                            compress=compress)
        assert written == len(crawl_logs)
        suffix = ".jsonl.gz" if compress else ".jsonl"
        assert (directory / f"shard-0000{suffix}").exists()
        assert _stream(load_logs(directory)) == _stream(crawl_logs)

    @pytest.mark.parametrize("compress", [False, True],
                             ids=["plain", "gzip"])
    def test_sharded_study_equals_in_memory(self, crawl_logs, tmp_path,
                                            compress):
        directory = tmp_path / "crawl"
        save_logs(crawl_logs, directory, shards=3, compress=compress)
        manifest = ShardManifest.load(directory)
        shards = [load_shard(directory, i)
                  for i in range(manifest.n_shards)]
        merged = Study.from_shards(shards)
        mono = Study(crawl_logs)
        assert merged.table1() == mono.table1()
        assert merged.table2(20) == mono.table2(20)
        assert merged.table5(10) == mono.table5(10)
        assert merged.sec51_prevalence() == mono.sec51_prevalence()

    def test_existing_directory_implies_sharded(self, crawl_logs, tmp_path):
        directory = tmp_path / "crawl"
        directory.mkdir()
        save_logs(crawl_logs[:6], directory)
        manifest = ShardManifest.load(directory)
        assert manifest.n_shards == 1
        assert manifest.total == 6

    def test_iter_logs_streams_in_shard_order(self, sharded_dir, crawl_logs):
        streamed = list(iter_logs(sharded_dir))
        assert _stream(streamed) == _stream(crawl_logs)

    def test_load_shard_partition(self, sharded_dir, crawl_logs):
        manifest = ShardManifest.load(sharded_dir)
        pieces = [load_shard(sharded_dir, i)
                  for i in range(manifest.n_shards)]
        assert [len(piece) for piece in pieces] == list(manifest.counts)
        flat = [log for piece in pieces for log in piece]
        assert _stream(flat) == _stream(crawl_logs)

    def test_parallel_crawl_to_dir_matches_serial_save(self, population,
                                                       crawl_logs, tmp_path):
        directory = tmp_path / "parallel"
        crawler = ParallelCrawler(population, CrawlConfig(seed=2025), jobs=2)
        manifest = crawler.crawl_to_dir(directory, n_shards=3)
        assert manifest.total == len(crawl_logs)
        assert _stream(load_logs(directory)) == _stream(crawl_logs)

    def test_single_file_layout_unchanged(self, crawl_logs, tmp_path):
        path = tmp_path / "crawl.jsonl"
        save_logs(crawl_logs[:5], path)
        assert path.is_file()
        assert len(load_logs(path)) == 5


class TestManifestErrors:
    def test_missing_manifest(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ManifestError, match="no manifest"):
            load_logs(empty)

    def test_missing_shard_file(self, sharded_dir):
        (sharded_dir / shard_filename(2)).unlink()
        with pytest.raises(ManifestError, match="missing shard"):
            load_logs(sharded_dir)

    def test_count_mismatch(self, sharded_dir):
        shard = sharded_dir / shard_filename(1)
        lines = shard.read_text().splitlines()
        shard.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ManifestError, match="manifest says"):
            load_logs(sharded_dir)

    def test_total_mismatch(self, sharded_dir):
        manifest_path = sharded_dir / MANIFEST_NAME
        data = json.loads(manifest_path.read_text())
        data["total"] += 1
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(ManifestError, match="sum of shard counts"):
            load_logs(sharded_dir)

    def test_unsupported_version(self, sharded_dir):
        manifest_path = sharded_dir / MANIFEST_NAME
        data = json.loads(manifest_path.read_text())
        data["version"] = 99
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(ManifestError, match="version"):
            load_logs(sharded_dir)

    def test_malformed_json(self, sharded_dir):
        (sharded_dir / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ManifestError, match="unreadable"):
            load_logs(sharded_dir)

    def test_missing_fields(self, sharded_dir):
        (sharded_dir / MANIFEST_NAME).write_text(json.dumps({"version": 1}))
        with pytest.raises(ManifestError, match="malformed"):
            load_logs(sharded_dir)

    def test_non_contiguous_indexes(self, sharded_dir):
        manifest_path = sharded_dir / MANIFEST_NAME
        data = json.loads(manifest_path.read_text())
        data["shards"][0]["index"] = 7
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(ManifestError, match="non-contiguous"):
            load_logs(sharded_dir)

    def test_shard_index_out_of_range(self, sharded_dir):
        with pytest.raises(ManifestError, match="out of range"):
            load_shard(sharded_dir, 11)

    def test_gz_name_over_plain_bytes_names_the_shard(self, crawl_logs,
                                                      tmp_path):
        """Manifest says gzip, disk holds plain JSONL: ManifestError."""
        directory = tmp_path / "crawl"
        save_logs(crawl_logs, directory, shards=2, compress=True)
        victim = directory / shard_filename(1, compress=True)
        plain = "\n".join(json.dumps(log.to_dict())
                          for log in crawl_logs[:1]) + "\n"
        victim.write_text(plain)
        with pytest.raises(ManifestError, match=r"shard 1 .*gzip JSONL"):
            load_logs(directory)

    def test_plain_name_over_gzip_bytes_names_the_shard(self, crawl_logs,
                                                        tmp_path):
        """Manifest says plain, disk holds gzip bytes: ManifestError."""
        import gzip

        directory = tmp_path / "crawl"
        save_logs(crawl_logs, directory, shards=2)
        victim = directory / shard_filename(0)
        victim.write_bytes(gzip.compress(victim.read_bytes()))
        with pytest.raises(ManifestError, match=r"shard 0 .*plain JSONL"):
            load_logs(directory)


class TestShardDigests:
    def test_save_logs_records_digests(self, sharded_dir):
        manifest = ShardManifest.load(sharded_dir)
        assert len(manifest.digests) == manifest.n_shards
        for index, name in enumerate(manifest.files):
            assert manifest.digest_for(index) \
                == compute_digest(sharded_dir / name)

    def test_verify_shard_files_passes_clean_dataset(self, sharded_dir):
        verify_shard_files(sharded_dir)

    def test_verify_shard_files_catches_tampering(self, sharded_dir):
        victim = sharded_dir / shard_filename(2)
        victim.write_bytes(victim.read_bytes() + b"extra\n")
        with pytest.raises(ManifestError, match="shard 2 .*hashes to"):
            verify_shard_files(sharded_dir)

    def test_verify_shard_files_catches_missing_file(self, sharded_dir):
        (sharded_dir / shard_filename(1)).unlink()
        with pytest.raises(ManifestError, match="missing shard"):
            verify_shard_files(sharded_dir)

    def test_digestless_manifest_still_loads(self, sharded_dir, crawl_logs):
        """Datasets written before digests existed remain readable."""
        manifest_path = sharded_dir / MANIFEST_NAME
        data = json.loads(manifest_path.read_text())
        for shard in data["shards"]:
            shard.pop("sha256", None)
        manifest_path.write_text(json.dumps(data))
        manifest = ShardManifest.load(sharded_dir)
        assert manifest.digests == ()
        assert manifest.digest_for(0) is None
        verify_shard_files(sharded_dir)    # existence-only check
        assert len(load_logs(sharded_dir)) == len(crawl_logs)

    @pytest.mark.parametrize("compress", [False, True],
                             ids=["plain", "gzip"])
    def test_write_shard_digest_is_pure_function_of_logs(self, crawl_logs,
                                                         tmp_path, compress):
        """Byte-determinism: same logs, same digest — even gzipped."""
        first = write_shard(crawl_logs[:5], tmp_path / "a", 0,
                            compress=compress)
        second = write_shard(crawl_logs[:5], tmp_path / "b", 0,
                             compress=compress)
        assert first.sha256 == second.sha256
        assert (tmp_path / "a" / first.name).read_bytes() \
            == (tmp_path / "b" / second.name).read_bytes()


# ---------------------------------------------------------------------------
# Sidecar seek indexes (PR 6): derived data, never part of the dataset
# ---------------------------------------------------------------------------

class TestShardIndexes:
    @pytest.mark.parametrize("compress", [False, True],
                             ids=["plain", "gzip"])
    def test_sidecars_written_alongside_shards(self, crawl_logs, tmp_path,
                                               compress):
        from repro.crawler.storage import (index_filename, load_shard_index)
        directory = tmp_path / "crawl"
        save_logs(crawl_logs, directory, shards=3, compress=compress)
        manifest = ShardManifest.load(directory)
        for i, name in enumerate(manifest.files):
            assert (directory / index_filename(name)).exists()
            index = load_shard_index(directory, name)
            assert index is not None
            assert index.count == manifest.counts[i]
            assert index.sha256 == manifest.digests[i]
            assert list(index.ranks) == sorted(index.ranks)

    def test_sidecar_does_not_change_shard_bytes_or_digests(
            self, crawl_logs, tmp_path):
        """The index is derived data: digests (and therefore cache keys,
        run keys, and the golden fixture) are untouched by its
        existence."""
        directory = tmp_path / "crawl"
        save_logs(crawl_logs, directory, shards=3)
        manifest = ShardManifest.load(directory)
        for i, name in enumerate(manifest.files):
            assert compute_digest(directory / name) == manifest.digests[i]

    @pytest.mark.parametrize("compress", [False, True],
                             ids=["plain", "gzip"])
    def test_read_site_indexed_equals_scan(self, crawl_logs, tmp_path,
                                           compress):
        from repro.crawler.storage import read_site
        directory = tmp_path / "crawl"
        save_logs(crawl_logs, directory, shards=3, compress=compress)
        cache = {}
        for log in crawl_logs:
            indexed = read_site(directory, log.rank, index_cache=cache)
            scanned = read_site(directory, log.rank, use_index=False)
            assert indexed.to_dict() == log.to_dict()
            assert scanned.to_dict() == indexed.to_dict()

    def test_read_site_missing_rank_raises(self, sharded_dir):
        from repro.crawler.storage import read_site
        with pytest.raises(KeyError):
            read_site(sharded_dir, 10**9)

    def test_missing_sidecars_fall_back_to_scan(self, crawl_logs,
                                                sharded_dir):
        from repro.crawler.storage import read_site
        for path in sharded_dir.glob("*.index.json"):
            path.unlink()
        log = crawl_logs[3]
        assert read_site(sharded_dir, log.rank).to_dict() == log.to_dict()

    def test_stale_sidecar_is_ignored(self, crawl_logs, sharded_dir):
        """A sidecar whose recorded sha disagrees with the manifest
        digest (e.g. the shard was re-crawled) must not be trusted."""
        from repro.crawler.storage import (index_filename, load_shard_index,
                                          read_site)
        manifest = ShardManifest.load(sharded_dir)
        name = manifest.files[0]
        sidecar = sharded_dir / index_filename(name)
        doctored = json.loads(sidecar.read_text())
        doctored["sha256"] = "0" * 64
        # Point the first entry at a bogus offset: a reader trusting
        # this sidecar would return garbage instead of falling back.
        doctored["offsets"][0] = 7
        sidecar.write_text(json.dumps(doctored))
        assert load_shard_index(sharded_dir, name) is not None  # loads...
        ranks = json.loads(sidecar.read_text())["ranks"]
        log = next(l for l in crawl_logs if l.rank == ranks[0])
        # ...but read_site cross-checks against the manifest and scans.
        got = read_site(sharded_dir, log.rank, manifest=manifest)
        assert got.to_dict() == log.to_dict()

    def test_torn_sidecar_is_ignored(self, crawl_logs, sharded_dir):
        from repro.crawler.storage import (index_filename, load_shard_index,
                                          read_site)
        manifest = ShardManifest.load(sharded_dir)
        name = manifest.files[0]
        sidecar = sharded_dir / index_filename(name)
        sidecar.write_text(sidecar.read_text()[:25])
        assert load_shard_index(sharded_dir, name) is None
        log = crawl_logs[0]
        assert read_site(sharded_dir, log.rank,
                         manifest=manifest).to_dict() == log.to_dict()

    def test_backfill_rebuilds_byte_identical_sidecars(self, sharded_dir):
        from repro.crawler.storage import build_shard_indexes, index_filename
        manifest = ShardManifest.load(sharded_dir)
        originals = {name: (sharded_dir / index_filename(name)).read_bytes()
                     for name in manifest.files}
        for name in manifest.files:
            (sharded_dir / index_filename(name)).unlink()
        result = build_shard_indexes(sharded_dir)
        assert (result.built, result.up_to_date) == (manifest.n_shards, 0)
        for name, blob in originals.items():
            assert (sharded_dir / index_filename(name)).read_bytes() == blob
        # Valid sidecars are left alone on a second pass — and counted,
        # so the CLI can report "N indexed, M up-to-date" truthfully.
        result = build_shard_indexes(sharded_dir)
        assert (result.built, result.up_to_date) == (0, manifest.n_shards)


# ---------------------------------------------------------------------------
# Indexed and scan paths must return the same bytes for the same rank
# ---------------------------------------------------------------------------

def _handmade_dataset(tmp_path, raw: bytes, count: int):
    """A one-shard dataset with externally produced (non-writer) bytes."""
    directory = tmp_path / "hand"
    directory.mkdir()
    name = shard_filename(0)
    (directory / name).write_bytes(raw)
    ShardManifest(n_shards=1, total=count, compress=False,
                  files=(name,), counts=(count,),
                  digests=(compute_digest(directory / name),)).save(directory)
    return directory


class TestLookupPathEquivalence:
    """read_site_line: sidecar seeks == full-scan fallback, byte for byte.

    Our writer never emits CRLF or padding, but externally produced
    shards (rsynced from Windows tooling, hand-concatenated) can — and
    the two lookup paths used to disagree on them: the index recorded
    the ``rstrip(b"\\n")`` span (keeping ``\\r``) while the scan
    stripped both, so the bytes a caller got depended on whether a
    sidecar happened to exist.  ETag-relevant, hence pinned.
    """

    def test_crlf_shard_returns_identical_bytes_on_both_paths(
            self, crawl_logs, tmp_path):
        from repro.crawler.storage import (build_shard_indexes,
                                           read_site_line)
        logs = crawl_logs[:3]
        lines = [json.dumps(log.to_dict(),
                            separators=(",", ":")).encode("utf-8")
                 for log in logs]
        raw = b"\r\n".join(lines) + b"\r\n"
        directory = _handmade_dataset(tmp_path, raw, len(logs))
        build_shard_indexes(directory)
        for log, line in zip(logs, lines):
            indexed = read_site_line(directory, log.rank)
            scanned = read_site_line(directory, log.rank, use_index=False)
            assert indexed == scanned == line

    def test_padded_lines_return_identical_bytes_on_both_paths(
            self, crawl_logs, tmp_path):
        from repro.crawler.storage import (build_shard_indexes,
                                           read_site_line)
        log = crawl_logs[0]
        line = json.dumps(log.to_dict(),
                          separators=(",", ":")).encode("utf-8")
        raw = b"   " + line + b"  \r\n"
        directory = _handmade_dataset(tmp_path, raw, 1)
        build_shard_indexes(directory)
        assert read_site_line(directory, log.rank) == line
        assert read_site_line(directory, log.rank, use_index=False) == line

    def test_rankless_line_cannot_shadow_rank_zero(self, crawl_logs,
                                                   tmp_path):
        """Writer/reader rank-default parity.

        ``build_shard_indexes`` used to file a rank-less line under the
        default rank 0 while the scan fallback used -1 — so a malformed
        line shadowed a real rank-0 log exactly when an index was
        present.  Both paths now skip rank-less lines entirely.
        """
        from repro.crawler.storage import (build_shard_indexes,
                                           load_shard_index,
                                           read_site_line)
        data = crawl_logs[0].to_dict()
        data["rank"] = 0
        line = json.dumps(data, separators=(",", ":")).encode("utf-8")
        junk = b'{"malformed":true}'
        raw = junk + b"\n" + line + b"\n"
        directory = _handmade_dataset(tmp_path, raw, 2)
        build_shard_indexes(directory)
        index = load_shard_index(directory, shard_filename(0))
        assert list(index.ranks) == [0]      # the junk line is not indexed
        assert read_site_line(directory, 0) == line
        assert read_site_line(directory, 0, use_index=False) == line

    def test_rankless_line_misses_identically_on_both_paths(
            self, crawl_logs, tmp_path):
        from repro.crawler.storage import build_shard_indexes, read_site_line
        log = crawl_logs[0]
        line = json.dumps(log.to_dict(),
                          separators=(",", ":")).encode("utf-8")
        raw = b'{"malformed":true}\n' + line + b"\n"
        directory = _handmade_dataset(tmp_path, raw, 2)
        build_shard_indexes(directory)
        assert read_site_line(directory, log.rank) == line
        for use_index in (True, False):
            with pytest.raises(KeyError):
                read_site_line(directory, 10 ** 9, use_index=use_index)
