"""The Adblock-Plus filter engine and the embedded lists."""

import pytest

from repro.analysis.filterlists import (
    FilterList,
    FilterRule,
    FilterRuleError,
    RuleOptions,
)
from repro.analysis.lists_data import LIST_NAMES, build_lists, combined_list


class TestRuleParsing:
    def test_domain_anchor(self):
        rule = FilterRule("||tracker.com^")
        assert rule.anchor_domain == "tracker.com"
        assert rule.matches("https://tracker.com/t.js")
        assert rule.matches("https://cdn.tracker.com/t.js")
        assert not rule.matches("https://nottracker.com/t.js")

    def test_domain_anchor_separator(self):
        rule = FilterRule("||ads.com^")
        assert rule.matches("https://ads.com/x")
        assert rule.matches("https://ads.com")
        assert not rule.matches("https://ads.com.evil.net/x")

    def test_start_anchor(self):
        rule = FilterRule("|https://exact.com/path")
        assert rule.matches("https://exact.com/path/x")
        assert not rule.matches("https://other.com/https://exact.com/path")

    def test_end_anchor(self):
        rule = FilterRule("/analytics.js|")
        assert rule.matches("https://x.com/analytics.js")
        assert not rule.matches("https://x.com/analytics.js?v=2")

    def test_plain_substring(self):
        rule = FilterRule("/pagead/")
        assert rule.matches("https://x.com/pagead/js/ads.js")

    def test_wildcard(self):
        rule = FilterRule("/banner/*/ad")
        assert rule.matches("https://x.com/banner/300x250/ad.png")
        assert not rule.matches("https://x.com/banner/img.png")

    def test_comment_rejected(self):
        with pytest.raises(FilterRuleError):
            FilterRule("! this is a comment")

    def test_cosmetic_rule_rejected(self):
        with pytest.raises(FilterRuleError):
            FilterRule("example.com##.ad-banner")

    def test_empty_rejected(self):
        with pytest.raises(FilterRuleError):
            FilterRule("   ")

    def test_unknown_option_rejected(self):
        with pytest.raises(FilterRuleError):
            FilterRule("||x.com^$websocket-frames")


class TestRuleOptions:
    def test_third_party_option(self):
        rule = FilterRule("||t.com^$third-party")
        assert rule.matches("https://t.com/x", is_third_party=True)
        assert not rule.matches("https://t.com/x", is_third_party=False)

    def test_first_party_only(self):
        rule = FilterRule("||t.com^$~third-party")
        assert rule.matches("https://t.com/x", is_third_party=False)
        assert not rule.matches("https://t.com/x", is_third_party=True)

    def test_resource_type_option(self):
        rule = FilterRule("||t.com^$script")
        assert rule.matches("https://t.com/x.js", resource_type="script")
        assert not rule.matches("https://t.com/px.gif", resource_type="image")

    def test_multiple_types(self):
        rule = FilterRule("||t.com^$script,image")
        assert rule.matches("https://t.com/x", resource_type="image")
        assert rule.matches("https://t.com/x", resource_type="script")
        assert not rule.matches("https://t.com/x", resource_type="xhr")

    def test_domain_option_include(self):
        rule = FilterRule("||t.com^$domain=news.com")
        assert rule.matches("https://t.com/x", page_domain="news.com")
        assert not rule.matches("https://t.com/x", page_domain="blog.com")

    def test_domain_option_exclude(self):
        rule = FilterRule("||t.com^$domain=~news.com")
        assert not rule.matches("https://t.com/x", page_domain="news.com")
        assert rule.matches("https://t.com/x", page_domain="blog.com")

    def test_options_permit_api(self):
        options = RuleOptions(resource_types=("script",), third_party=True)
        assert options.permits(resource_type="script", is_third_party=True,
                               page_domain="x.com")
        assert not options.permits(resource_type="script",
                                   is_third_party=False, page_domain="x.com")


class TestFilterList:
    def test_should_block(self):
        flist = FilterList(["||tracker.com^", "! comment", "/pixel?"])
        assert flist.should_block("https://cdn.tracker.com/t.js")
        assert flist.should_block("https://x.com/pixel?id=1")
        assert not flist.should_block("https://benign.com/app.js")

    def test_exception_rule_wins(self):
        flist = FilterList(["||cdn.com^", "@@||cdn.com/safe/"])
        assert flist.should_block("https://cdn.com/ads/x.js")
        assert not flist.should_block("https://cdn.com/safe/x.js")

    def test_skipped_lines_recorded(self):
        flist = FilterList(["! comment", "||ok.com^", "bad.com##.ad"])
        assert len(flist.skipped) == 2
        assert flist.rule_count == 1

    def test_combine(self):
        a = FilterList(["||a.com^"], name="a")
        b = FilterList(["||b.com^"], name="b")
        combined = FilterList.combine([a, b])
        assert combined.should_block("https://a.com/x")
        assert combined.should_block("https://b.com/x")

    def test_domain_bucketing_walks_up(self):
        flist = FilterList(["||tracker.co.uk^"])
        assert flist.should_block("https://deep.sub.tracker.co.uk/x.js")


class TestEmbeddedLists:
    def test_nine_lists_built(self):
        lists = build_lists()
        assert set(lists) == set(LIST_NAMES)
        assert len(LIST_NAMES) == 9

    def test_known_trackers_blocked(self):
        combined = combined_list()
        for url in ("https://www.googletagmanager.com/gtm.js",
                    "https://connect.facebook.net/en_US/fbevents.js",
                    "https://bat.bing.com/bat.js",
                    "https://cdn.cookielaw.org/scripttemplates/otSDKStub.js",
                    "https://snap.licdn.com/li.lms-analytics/insight.min.js"):
            assert combined.should_block(url, resource_type="script",
                                         page_domain="site.com"), url

    def test_libraries_not_blocked(self):
        combined = combined_list()
        for url in ("https://code.jquery.com/jquery-3.7.1.min.js",
                    "https://cdn.jsdelivr.net/npm/bootstrap/dist/js/bootstrap.bundle.min.js",
                    "https://fonts.googleapis.com/css2-loader.js"):
            assert not combined.should_block(url, resource_type="script",
                                             page_domain="site.com"), url

    def test_unlisted_generic_trackers_missed(self):
        # Filter lists have blind spots by design.
        from repro.ecosystem.catalog import generic_services
        combined = combined_list()
        unlisted = [s for s in generic_services(240)
                    if s.category == "advertising" and not s.tracking]
        assert unlisted
        assert not combined.should_block(unlisted[0].script_url,
                                         resource_type="script",
                                         page_domain="site.com")

    def test_cmp_in_fanboy_annoyances(self):
        lists = build_lists()
        assert lists["fanboy-annoyances"].should_block(
            "https://cdn-cookieyes.com/client_data/cookieyes.js",
            page_domain="site.com")
