"""The deterministic cooperative visit engine (ROADMAP rung 2).

Two layers of guarantees:

* **Scheduler unit tests** — wait-point ordering on the virtual clock,
  FIFO tie-breaking, submission-order result streaming, exception
  propagation and coroutine cleanup.
* **Cross-engine equivalence matrix** — the crawl's ``VisitLog`` stream
  (and the merged ``Study`` output) is bit-identical across the serial
  path, the async engine at concurrency 2/8/64, and process-worker ×
  async combinations under both shard strategies.  This is the
  within-shard analogue of ``tests/test_parallel_crawl.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import Study
from repro.crawler import (
    CrawlConfig,
    Crawler,
    ParallelCrawler,
    VisitEngine,
    WaitPoint,
    drive,
)

SEED_CFG = CrawlConfig(seed=2025)


def _stream(logs):
    return [json.dumps(log.to_dict(), sort_keys=True)
            for log in sorted(logs, key=lambda log: log.rank)]


# ---------------------------------------------------------------------------
# Scheduler unit tests
# ---------------------------------------------------------------------------

def _job(name, waits, trace, result=None, fail_at=None):
    """A visit coroutine that records its resume points in ``trace``."""
    def factory():
        trace.append((name, "start"))
        for step, wait in enumerate(waits):
            yield WaitPoint(wait, reason=f"{name}:{step}")
            if fail_at == step:
                raise ValueError(f"{name} failed at step {step}")
            trace.append((name, step))
        trace.append((name, "end"))
        return result if result is not None else name
    return factory


class TestVisitEngine:
    def test_invalid_concurrency(self):
        with pytest.raises(ValueError):
            VisitEngine(0)
        with pytest.raises(ValueError):
            VisitEngine(-3)

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            WaitPoint(-0.1)

    def test_concurrency_one_is_the_serial_schedule(self):
        trace = []
        jobs = [_job("a", [1.0, 1.0], trace), _job("b", [0.1], trace)]
        results = VisitEngine(1).run(jobs)
        assert results == ["a", "b"]
        # b never starts before a has fully finished.
        assert trace == [("a", "start"), ("a", 0), ("a", 1), ("a", "end"),
                         ("b", "start"), ("b", 0), ("b", "end")]

    def test_wait_point_ordering_on_the_virtual_clock(self):
        trace = []
        jobs = [_job("slow", [5.0], trace), _job("fast", [1.0], trace)]
        results = VisitEngine(2).run(jobs)
        assert results == ["slow", "fast"]   # submission order...
        # ...but the shorter wait resumed first on the shared clock.
        assert trace == [("slow", "start"), ("fast", "start"),
                         ("fast", 0), ("fast", "end"),
                         ("slow", 0), ("slow", "end")]

    def test_equal_due_times_resume_fifo(self):
        trace = []
        jobs = [_job(name, [2.0, 2.0], trace) for name in ("a", "b", "c")]
        VisitEngine(3).run(jobs)
        # Every wake-up wave replays the admission order, twice.
        resumed = [name for name, step in trace if step in (0, 1)]
        assert resumed == ["a", "b", "c", "a", "b", "c"]

    def test_zero_second_waits_still_interleave_deterministically(self):
        trace = []
        jobs = [_job("a", [0.0, 0.0], trace), _job("b", [0.0], trace)]
        VisitEngine(2).run(jobs)
        assert trace == [("a", "start"), ("b", "start"),
                         ("a", 0), ("b", 0), ("b", "end"),
                         ("a", 1), ("a", "end")]

    def test_results_in_submission_order_despite_completion_order(self):
        trace = []
        completion = []
        jobs = [_job("a", [9.0], trace), _job("b", [1.0], trace),
                _job("c", [0.5], trace)]
        engine = VisitEngine(3, on_complete=lambda i, r: completion.append(i))
        assert engine.run(jobs) == ["a", "b", "c"]
        assert completion == [2, 1, 0]

    def test_run_ordered_streams_before_later_jobs_start(self):
        trace = []
        jobs = [_job("a", [1.0], trace), _job("b", [1.0], trace)]
        stream = VisitEngine(1).run_ordered(jobs)
        assert next(stream) == "a"
        # Lazy admission: b's coroutine has not even started yet.
        assert ("b", "start") not in trace
        assert list(stream) == ["b"]

    def test_more_jobs_than_concurrency(self):
        trace = []
        jobs = [_job(f"j{i}", [float(i % 3)], trace) for i in range(20)]
        assert VisitEngine(4).run(jobs) == [f"j{i}" for i in range(20)]

    def test_buffered_results_count_toward_concurrency(self):
        """A slow head-of-line visit must not let admission run ahead.

        In-flight + buffered-but-unemitted results are capped at
        ``concurrency``, so shard streaming keeps its memory bound even
        when later visits finish instantly (e.g. failed crawls).
        """
        trace = []
        jobs = [_job("slow", [10.0], trace)] + \
            [_job(f"instant{i}", [], trace) for i in range(5)]
        assert VisitEngine(2).run(jobs) == \
            ["slow"] + [f"instant{i}" for i in range(5)]
        # Only one instant job (filling the second slot) started before
        # the slow visit finished and drained the emission buffer.
        slow_end = trace.index(("slow", "end"))
        started_before = [name for name, step in trace[:slow_end]
                          if step == "start"]
        assert started_before == ["slow", "instant0"]

    def test_immediate_return_coroutines(self):
        def empty():
            return None
            yield  # pragma: no cover — makes this a generator

        trace = []
        jobs = [empty, _job("a", [1.0], trace), empty]
        assert VisitEngine(2).run(jobs) == [None, "a", None]

    def test_exception_propagates_and_survivors_are_closed(self):
        trace = []
        closed = []

        def bystander():
            try:
                yield WaitPoint(100.0, "never fires")
                trace.append(("bystander", "resumed"))
            finally:
                closed.append("bystander")

        jobs = [bystander,
                _job("boom", [1.0], trace, fail_at=0),
                _job("never-admitted", [1.0], trace)]
        with pytest.raises(ValueError, match="boom failed"):
            VisitEngine(2).run(jobs)
        assert closed == ["bystander"]          # finally blocks ran
        assert ("bystander", "resumed") not in trace
        assert ("never-admitted", "start") not in trace

    def test_non_waitpoint_yield_rejected(self):
        def bad():
            yield 2.0

        with pytest.raises(TypeError, match="expected WaitPoint"):
            VisitEngine(1).run([bad])
        with pytest.raises(TypeError, match="expected WaitPoint"):
            drive(bad())

    def test_drive_returns_the_coroutine_value(self):
        trace = []
        assert drive(_job("solo", [1.0, 2.0], trace, result=42)()) == 42
        assert trace[-1] == ("solo", "end")


# ---------------------------------------------------------------------------
# Cross-engine equivalence: serial vs async vs process×async
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def subset(population):
    """A small site sample *including* failing crawls (None results)."""
    return population.sites[:60]


@pytest.fixture(scope="module")
def subset_stream(population, subset):
    return _stream(Crawler(population, SEED_CFG).crawl(subset))


class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("concurrency", [2, 8, 64])
    def test_async_matches_serial(self, population, subset, subset_stream,
                                  concurrency):
        crawler = Crawler(population, SEED_CFG)
        assert _stream(crawler.crawl(subset,
                                     concurrency=concurrency)) == subset_stream

    @pytest.mark.parametrize("strategy", ["contiguous", "stride"])
    def test_sharded_async_matches_serial(self, population, subset,
                                          subset_stream, strategy):
        crawler = ParallelCrawler(population, SEED_CFG, jobs=1,
                                  strategy=strategy, concurrency=8)
        assert _stream(crawler.crawl(subset, n_shards=3)) == subset_stream

    def test_study_output_matches_serial(self, population, subset):
        serial = Study(Crawler(population, SEED_CFG).crawl(subset))
        crawler = ParallelCrawler(population, SEED_CFG, jobs=1,
                                  concurrency=16)
        merged = Study(crawler.crawl(subset, n_shards=4))
        assert merged.table1() == serial.table1()
        assert merged.table2(20) == serial.table2(20)
        assert merged.sec51_prevalence() == serial.sec51_prevalence()
        assert merged.sec56_inclusion() == serial.sec56_inclusion()

    def test_icrawl_streams_in_rank_order(self, population, subset,
                                          subset_stream):
        crawler = Crawler(population, SEED_CFG)
        seen = []
        stream = []
        for log in crawler.icrawl(subset, concurrency=8):
            seen.append(log.rank)
            stream.append(json.dumps(log.to_dict(), sort_keys=True))
        assert seen == sorted(seen)
        assert stream == subset_stream

    def test_icrawl_on_visit_covers_every_site(self, population, subset):
        visited = []
        crawler = Crawler(population, SEED_CFG)
        list(crawler.icrawl(subset, concurrency=4,
                            on_visit=lambda i, log: visited.append(i)))
        # Every site fires exactly once — including failed crawls.
        assert sorted(visited) == list(range(len(subset)))

    @pytest.mark.slow
    def test_full_population_async_matches_serial(self, population,
                                                  crawl_logs):
        reference = _stream(crawl_logs)
        crawler = Crawler(population, SEED_CFG)
        assert _stream(crawler.crawl(concurrency=8)) == reference

    @pytest.mark.slow
    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("concurrency", [2, 8, 64])
    @pytest.mark.parametrize("strategy", ["contiguous", "stride"])
    def test_process_worker_matrix(self, population, subset, subset_stream,
                                   jobs, concurrency, strategy):
        """The full matrix: process executor × async engine × strategy."""
        crawler = ParallelCrawler(population, SEED_CFG, jobs=jobs,
                                  executor="process", strategy=strategy,
                                  concurrency=concurrency)
        logs = crawler.crawl(subset, n_shards=2 * jobs)
        assert _stream(logs) == subset_stream

    @pytest.mark.slow
    def test_process_async_study_matches_serial(self, population, subset):
        serial = Study(Crawler(population, SEED_CFG).crawl(subset))
        crawler = ParallelCrawler(population, SEED_CFG, jobs=2,
                                  executor="process", concurrency=8)
        merged = Study.from_shards(
            [crawler.crawl(subset, n_shards=4)])
        assert merged.table1() == serial.table1()
        assert merged.sec52_api_usage() == serial.sec52_api_usage()
        assert merged.sec55_overwrite_attributes() == \
            serial.sec55_overwrite_attributes()


# ---------------------------------------------------------------------------
# The trivial schedule really is the old serial path
# ---------------------------------------------------------------------------

class TestSerialPathIsTrivialSchedule:
    def test_visit_site_equals_engine_run(self, population):
        site = population.successful_sites()[0]
        direct = Crawler(population, SEED_CFG).visit_site(site)
        crawler = Crawler(population, SEED_CFG)
        [via_engine] = VisitEngine(1).run(
            [lambda: crawler.visit_steps(site)])
        assert json.dumps(direct.to_dict(), sort_keys=True) == \
            json.dumps(via_engine.to_dict(), sort_keys=True)

    def test_failed_crawl_yields_none(self, population):
        failed = [s for s in population.sites if s.crawl_fails][0]
        crawler = Crawler(population, SEED_CFG)
        assert VisitEngine(4).run(
            [lambda: crawler.visit_steps(failed)]) == [None]

    def test_guards_accumulate_in_site_order(self, population):
        sites = population.successful_sites()[:6]
        config = CrawlConfig(seed=2025, install_guard=True, concurrency=4)
        crawler = Crawler(population, config)
        crawler.crawl(sites)
        assert len(crawler.guards) == len(sites)
