"""Service archetype behaviours executed in real pages."""

import numpy as np
import pytest

from repro.browser.browser import Browser
from repro.browser.scripts import Script
from repro.ecosystem.behaviors import build_behavior, first_party_behavior
from repro.ecosystem.services import CookieSpec, ServiceSpec


def run_service(service, site="https://site.com/", extra_scripts=(),
                seed=1):
    browser = Browser(rng=np.random.default_rng(seed))
    scripts = list(extra_scripts)
    scripts.append(Script.external(
        service.script_url,
        behavior=build_behavior(service), label=service.key))
    return browser.visit(site, scripts=scripts)


def spec(**kw) -> ServiceSpec:
    defaults = dict(key="svc", domain="svc.com", entity="Svc",
                    category="analytics", tracking=True,
                    archetype="analytics", async_prob=0.0)
    defaults.update(kw)
    return ServiceSpec(**defaults)


class TestAnalytics:
    def test_sets_own_cookies(self):
        service = spec(cookies=(CookieSpec("_svc_id", "uuid"),))
        page = run_service(service)
        assert page.jar.find("_svc_id")

    def test_does_not_reset_existing(self):
        service = spec(cookies=(CookieSpec("_svc_id", "uuid"),))
        preset = Script.external(
            "https://other.com/o.js",
            behavior=lambda js: js.set_cookie("_svc_id=KEEP; Domain=site.com"))
        page = run_service(service, extra_scripts=[preset])
        assert page.jar.find("_svc_id")[0].value == "KEEP"

    def test_beacons_home(self):
        service = spec(cookies=(CookieSpec("_svc_id", "uuid"),))
        page = run_service(service)
        collects = [r for r in page.network.requests
                    if r.url.host == "svc.com" and "svc_id" in r.url.query]
        assert collects

    def test_steals_targets(self):
        service = spec(steal_targets=("_loot",), steal_prob=1.0)
        preset = Script.external(
            "https://victim.com/v.js",
            behavior=lambda js: js.set_cookie(
                "_loot=stolenvalue123; Domain=site.com"))
        page = run_service(service, extra_scripts=[preset])
        thefts = [r for r in page.network.requests
                  if "stolenvalue123" in r.url.query]
        assert thefts

    def test_steal_respects_probability_zero(self):
        service = spec(steal_targets=("_loot",), steal_prob=0.0)
        preset = Script.external(
            "https://victim.com/v.js",
            behavior=lambda js: js.set_cookie(
                "_loot=stolenvalue123; Domain=site.com"))
        page = run_service(service, extra_scripts=[preset])
        assert not [r for r in page.network.requests
                    if "stolenvalue123" in r.url.query]


class TestAdExchange:
    def test_syncs_only_known_identifiers(self):
        service = spec(archetype="ad_exchange", steal_prob=1.0)
        presets = [
            Script.external("https://gtm.com/g.js", behavior=lambda js: (
                js.set_cookie("_ga=GA1.1.111222333.1746838827; Domain=site.com"),
                js.set_cookie("fp_secret=supersecretvalue42; Domain=site.com"))),
        ]
        page = run_service(service, extra_scripts=presets)
        bids = [r for r in page.network.requests if r.url.path == "/bid"]
        assert bids
        joined = "&".join(r.url.query for r in bids)
        assert "111222333" in joined          # known RTB identifier
        assert "supersecretvalue42" not in joined  # arbitrary state stays put

    def test_creates_ad_slot(self):
        service = spec(archetype="ad_exchange")
        page = run_service(service)
        slots = [e for e in page.document.body.descendants()
                 if e.tag == "ins"]
        assert slots

    def test_overwrites_target(self):
        service = spec(archetype="ad_exchange",
                       overwrite_targets=("cto_bundle",), overwrite_prob=1.0)
        preset = Script.external(
            "https://criteo.com/l.js",
            behavior=lambda js: js.set_cookie(
                "cto_bundle=" + "x" * 194 + "; Domain=site.com"))
        page = run_service(service, extra_scripts=[preset])
        assert page.jar.find("cto_bundle")[0].value != "x" * 194


class TestTagManager:
    def test_includes_children(self):
        child = spec(key="child", domain="child.com",
                     cookies=(CookieSpec("_child_id", "uuid"),))
        parent = spec(key="parent", domain="parent.com",
                      archetype="tag_manager",
                      children=("child",), child_count=(1, 1))

        def resolve(key):
            assert key == "child"
            return child, build_behavior(child)

        browser = Browser(rng=np.random.default_rng(3))
        page = browser.visit("https://site.com/", scripts=[
            Script.external(parent.script_url,
                            behavior=build_behavior(parent, resolve))])
        child_scripts = [s for s in page.scripts if s.label == "child"]
        assert child_scripts and child_scripts[0].parent is not None
        assert page.jar.find("_child_id")


class TestCmp:
    def test_deletes_targets_on_decline(self):
        service = spec(archetype="cmp", category="cmp",
                       cookies=(CookieSpec("consent", "uuid"),),
                       delete_targets=("_fbp",), delete_prob=1.0)
        preset = Script.external(
            "https://connect.facebook.net/f.js",
            behavior=lambda js: js.set_cookie("_fbp=fb.1.1.1; Domain=site.com"))
        page = run_service(service, extra_scripts=[preset])
        assert not page.jar.find("_fbp")

    def test_keeps_targets_when_consented(self):
        service = spec(archetype="cmp", category="cmp",
                       delete_targets=("_fbp",), delete_prob=0.0)
        preset = Script.external(
            "https://connect.facebook.net/f.js",
            behavior=lambda js: js.set_cookie("_fbp=fb.1.1.1; Domain=site.com"))
        page = run_service(service, extra_scripts=[preset])
        assert page.jar.find("_fbp")


class TestCookieStoreSdk:
    def test_sets_via_cookiestore(self):
        service = spec(archetype="cookie_store_sdk",
                       cookies=(CookieSpec("keep_alive", "keep_alive",
                                           api="cookieStore"),))
        page = run_service(service)
        cookie = page.jar.find("keep_alive")[0]
        assert cookie.secure  # cookieStore writes are Secure


class TestWidget:
    def test_colliding_names_overwrite(self):
        widget_a = spec(key="wa", domain="wa.com", archetype="widget",
                        cookies=(CookieSpec("cookie_test", "short_flag"),))
        widget_b = spec(key="wb", domain="wb.com", archetype="widget",
                        cookies=(CookieSpec("cookie_test", "generic_id"),))
        browser = Browser(rng=np.random.default_rng(5))
        page = browser.visit("https://site.com/", scripts=[
            Script.external(widget_a.script_url, behavior=build_behavior(widget_a)),
            Script.external(widget_b.script_url, behavior=build_behavior(widget_b))])
        # Second widget clobbered the first's probe cookie.
        assert len(page.jar.find("cookie_test")) == 1


class TestDomModifier:
    def test_rewrites_foreign_element(self):
        service = spec(archetype="dom_modifier",
                       cookies=(CookieSpec("bt_vid", "uuid"),))
        creator = Script.external(
            "https://ads.example.com/slot.js",
            behavior=lambda js: js.document.body.append_child(
                js.document.create_element("ins")))
        page = run_service(service, extra_scripts=[creator])
        cross = page.document.cross_script_mutations()
        assert cross


class TestLibrary:
    def test_no_cookies_no_requests_beyond_fetch(self):
        service = spec(archetype="library", tracking=False,
                       category="library")
        page = run_service(service)
        assert len(page.jar) == 0


class TestFirstParty:
    def test_session_and_prefs(self):
        browser = Browser(rng=np.random.default_rng(6))
        page = browser.visit("https://site.com/", scripts=[
            Script.external("https://site.com/main.js",
                            behavior=first_party_behavior())])
        assert page.jar.find("fp_session")
        assert page.jar.find("site_prefs")

    def test_deferred_cleanup_deletes_after_trackers(self):
        browser = Browser(rng=np.random.default_rng(7))
        fp = Script.external(
            "https://site.com/main.js",
            behavior=first_party_behavior(deletes=("_fbp",)))
        tracker = Script.external(
            "https://connect.facebook.net/f.js",
            behavior=lambda js: js.set_cookie("_fbp=fb.1.1.1; Domain=site.com"))
        # First-party script appears FIRST in markup, tracker second —
        # the delete still lands because cleanup runs on a timer.
        page = browser.visit("https://site.com/", scripts=[fp, tracker])
        assert not page.jar.find("_fbp")

    def test_self_hosted_exfiltration(self):
        browser = Browser(rng=np.random.default_rng(8))
        fp = Script.external(
            "https://site.com/main.js",
            behavior=first_party_behavior(
                self_hosted_tracking=True,
                exfil_destination="stats.g.doubleclick.net"))
        tracker = Script.external(
            "https://gtm.com/g.js",
            behavior=lambda js: js.set_cookie(
                "_ga=GA1.1.999888777.1746838827; Domain=site.com"))
        page = browser.visit("https://site.com/", scripts=[fp, tracker])
        proxied = [r for r in page.network.requests
                   if "doubleclick" in r.url.host and "999888777" in r.url.query]
        assert proxied
