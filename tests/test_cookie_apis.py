"""document.cookie and CookieStore APIs, including extension wrapping."""

import pytest

from repro.browser.cookiestore import CookieStore, NotSecureContext
from repro.browser.document_cookie import DocumentCookie
from repro.browser.events import Clock, EventLoop
from repro.cookies.jar import CookieJar
from repro.net.url import parse_url

HTTPS = parse_url("https://example.com/")
HTTP = parse_url("http://example.com/")


@pytest.fixture
def env():
    jar = CookieJar()
    clock = Clock()
    loop = EventLoop(clock)
    return jar, clock, loop


class TestDocumentCookie:
    def test_set_then_get(self, env):
        jar, clock, _loop = env
        api = DocumentCookie(jar, HTTPS, clock)
        api.set("a=1; Path=/")
        assert api.get() == "a=1"

    def test_get_joins_with_semicolons(self, env):
        jar, clock, _loop = env
        api = DocumentCookie(jar, HTTPS, clock)
        api.set("a=1")
        api.set("b=2")
        assert api.get() == "a=1; b=2"

    def test_script_write_is_not_http(self, env):
        jar, clock, _loop = env
        DocumentCookie(jar, HTTPS, clock).set("a=1")
        assert not jar.get("a", "example.com").from_http

    def test_httponly_invisible(self, env):
        jar, clock, _loop = env
        jar.set_from_header("sid=s; HttpOnly", HTTPS)
        api = DocumentCookie(jar, HTTPS, clock)
        assert api.get() == ""

    def test_delete_via_max_age_zero(self, env):
        jar, clock, _loop = env
        api = DocumentCookie(jar, HTTPS, clock)
        api.set("a=1")
        change = api.set("a=; Max-Age=0")
        assert change.kind == "delete"
        assert api.get() == ""

    def test_wrapping_getter(self, env):
        jar, clock, _loop = env
        api = DocumentCookie(jar, HTTPS, clock)
        api.set("secret=x")
        api.wrap(getter=lambda prev: (lambda: "FILTERED"))
        assert api.get() == "FILTERED"

    def test_wrapping_composes_in_order(self, env):
        jar, clock, _loop = env
        api = DocumentCookie(jar, HTTPS, clock)
        api.set("a=1")
        calls = []

        def wrap_one(prev):
            def inner():
                calls.append("inner")
                return prev()
            return inner

        def wrap_two(prev):
            def outer():
                calls.append("outer")
                return prev()
            return outer

        api.wrap(getter=wrap_one)
        api.wrap(getter=wrap_two)  # installed last => outermost
        api.get()
        assert calls == ["outer", "inner"]

    def test_setter_wrapper_can_block(self, env):
        jar, clock, _loop = env
        api = DocumentCookie(jar, HTTPS, clock)

        def deny(prev):
            return lambda raw: None

        api.wrap(setter=deny)
        assert api.set("a=1") is None
        assert len(jar) == 0

    def test_unwrap_all(self, env):
        jar, clock, _loop = env
        api = DocumentCookie(jar, HTTPS, clock)
        api.wrap(getter=lambda prev: (lambda: "X"))
        api.unwrap_all()
        api.set("a=1")
        assert api.get() == "a=1"


class TestCookieStore:
    def test_requires_secure_context(self, env):
        jar, clock, loop = env
        with pytest.raises(NotSecureContext):
            CookieStore(jar, HTTP, clock, loop)

    def test_set_and_get(self, env):
        jar, clock, loop = env
        store = CookieStore(jar, HTTPS, clock, loop)
        store.set("k", "v")
        promise = store.get("k")
        loop.run_until_idle()
        item = promise.result()
        assert item.name == "k"
        assert item.value == "v"
        assert item.secure  # cookieStore writes are always Secure

    def test_get_missing_resolves_none(self, env):
        jar, clock, loop = env
        store = CookieStore(jar, HTTPS, clock, loop)
        promise = store.get("missing")
        loop.run_until_idle()
        assert promise.result() is None

    def test_get_all(self, env):
        jar, clock, loop = env
        store = CookieStore(jar, HTTPS, clock, loop)
        store.set("a", "1")
        store.set("b", "2")
        promise = store.get_all()
        loop.run_until_idle()
        assert {i.name for i in promise.result()} == {"a", "b"}

    def test_delete(self, env):
        jar, clock, loop = env
        store = CookieStore(jar, HTTPS, clock, loop)
        store.set("a", "1")
        store.delete("a")
        promise = store.get("a")
        loop.run_until_idle()
        assert promise.result() is None

    def test_expires_option(self, env):
        jar, clock, loop = env
        store = CookieStore(jar, HTTPS, clock, loop)
        store.set("a", "1", expires=100.0)
        assert jar.get("a", "example.com").expires == 100.0

    def test_foreign_domain_rejected(self, env):
        jar, clock, loop = env
        store = CookieStore(jar, HTTPS, clock, loop)
        promise = store.set("a", "1", domain="other.com")
        loop.run_until_idle()
        with pytest.raises(ValueError):
            promise.result()

    def test_mutation_applies_synchronously_for_attribution(self, env):
        # The write hits the jar at call time (wrappers and stack
        # attribution need the caller's frame), even though the promise
        # resolves later.
        jar, clock, loop = env
        store = CookieStore(jar, HTTPS, clock, loop)
        store.set("a", "1")
        assert jar.get("a", "example.com") is not None

    def test_wrapping_get_all_filters(self, env):
        jar, clock, loop = env
        store = CookieStore(jar, HTTPS, clock, loop)
        store.set("mine", "1")
        store.set("theirs", "2")

        def only_mine(prev):
            return lambda: [i for i in prev() if i.name == "mine"]

        store.wrap(get_all=only_mine)
        promise = store.get_all()
        loop.run_until_idle()
        assert [i.name for i in promise.result()] == ["mine"]

    def test_wrapping_set_can_block(self, env):
        jar, clock, loop = env
        store = CookieStore(jar, HTTPS, clock, loop)
        store.wrap(set=lambda prev: (lambda n, v, o: None))
        store.set("a", "1")
        assert jar.get("a", "example.com") is None

    def test_cookie_list_item_domain_none_for_host_only(self, env):
        jar, clock, loop = env
        store = CookieStore(jar, HTTPS, clock, loop)
        store.set("a", "1")
        promise = store.get("a")
        loop.run_until_idle()
        assert promise.result().domain is None

    def test_cookie_list_item_domain_set(self, env):
        jar, clock, loop = env
        store = CookieStore(jar, HTTPS, clock, loop)
        store.set("a", "1", domain="example.com")
        promise = store.get("a")
        loop.run_until_idle()
        assert promise.result().domain == "example.com"
