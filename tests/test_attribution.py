"""Ownership index and cross-domain manipulation detection (§4.4)."""

import pytest

from repro.analysis.attribution import (
    CookiePair,
    build_ownership,
    detect_manipulations,
)
from repro.records import CookieWriteEvent, HeaderCookieEvent, VisitLog

SITE = "site.com"


def write(name, kind="set", domain="tracker.com", value="v" * 12, ts=1.0,
          api="document.cookie", attrs=(), raw=None, inclusion="direct"):
    return CookieWriteEvent(
        site=SITE, cookie_name=name, cookie_value=value, api=api, kind=kind,
        script_url=f"https://{domain}/t.js" if domain else None,
        script_domain=domain, inclusion=inclusion,
        raw=raw if raw is not None else f"{name}={value}",
        attrs_changed=tuple(attrs), timestamp=ts)


def header(name, value="srv" + "x" * 10, domain=SITE, ts=0.0, first=True):
    return HeaderCookieEvent(
        site=SITE, cookie_name=name, cookie_value=value,
        response_url=f"https://{domain}/", response_domain=domain,
        initiator_domain=None, first_party=first, timestamp=ts)


def log_with(writes=(), headers=()):
    log = VisitLog(site=SITE, url=f"https://{SITE}/")
    log.cookie_writes.extend(writes)
    log.header_cookies.extend(headers)
    return log


class TestOwnership:
    def test_first_setter_wins(self):
        log = log_with(writes=[write("_ga", domain="gtm.com", ts=1.0),
                               write("_ga", kind="overwrite",
                                     domain="other.com", ts=2.0)])
        ownership = build_ownership(log)
        assert ownership.creators["_ga"] == "gtm.com"

    def test_http_header_creator(self):
        log = log_with(headers=[header("srv_pref")])
        ownership = build_ownership(log)
        assert ownership.creators["srv_pref"] == SITE
        assert ownership.channels["srv_pref"] == "http"
        assert ownership.apis["srv_pref"] == "http"

    def test_third_party_header_ignored(self):
        log = log_with(headers=[header("tp", domain="tracker.com",
                                       first=False)])
        assert "tp" not in build_ownership(log).creators

    def test_headers_before_writes_at_same_time(self):
        log = log_with(writes=[write("x", domain="script.com", ts=0.0)],
                       headers=[header("x", ts=0.0)])
        assert build_ownership(log).creators["x"] == SITE

    def test_inline_write_attributed_to_site(self):
        log = log_with(writes=[write("pref", domain=None, inclusion="inline")])
        assert build_ownership(log).creators["pref"] == SITE

    def test_values_accumulated(self):
        log = log_with(writes=[write("_ga", value="valuefirst1", ts=1.0),
                               write("_ga", kind="overwrite",
                                     value="valuesecond2", ts=2.0)])
        assert build_ownership(log).values["_ga"] == ["valuefirst1",
                                                      "valuesecond2"]

    def test_delete_does_not_create_ownership(self):
        log = log_with(writes=[write("ghost", kind="delete")])
        assert "ghost" not in build_ownership(log).creators

    def test_pair_helpers(self):
        log = log_with(writes=[write("_ga", domain="gtm.com")])
        ownership = build_ownership(log)
        assert ownership.pair_of("_ga") == CookiePair("_ga", "gtm.com")
        assert ownership.pair_of("missing") is None
        assert ownership.all_pairs() == [CookiePair("_ga", "gtm.com")]


class TestManipulationDetection:
    def test_cross_domain_overwrite(self):
        log = log_with(writes=[
            write("_fbp", domain="facebook.net", ts=1.0),
            write("_fbp", kind="overwrite", domain="segment.com", ts=2.0,
                  attrs=("value", "expires"))])
        actions = detect_manipulations(log)
        assert len(actions) == 1
        action = actions[0]
        assert action.kind == "overwrite"
        assert action.actor == "segment.com"
        assert action.pair.creator == "facebook.net"
        assert action.attrs_changed == ("value", "expires")

    def test_own_overwrite_not_cross_domain(self):
        log = log_with(writes=[
            write("_fbp", domain="facebook.net", ts=1.0),
            write("_fbp", kind="overwrite", domain="facebook.net", ts=2.0)])
        assert detect_manipulations(log) == []

    def test_cross_domain_delete(self):
        log = log_with(writes=[
            write("_uetvid", domain="bing.com", ts=1.0),
            write("_uetvid", kind="delete", domain="cookie-script.com",
                  ts=2.0)])
        actions = detect_manipulations(log)
        assert actions[0].kind == "delete"

    def test_first_party_deleting_tracker_counts(self):
        # prettylittlething.com's own script tops Figure 8b.
        log = log_with(writes=[
            write("_ga", domain="googletagmanager.com", ts=1.0),
            write("_ga", kind="delete", domain=SITE, ts=2.0)])
        actions = detect_manipulations(log)
        assert actions and actions[0].actor == SITE

    def test_shadowing_set_counts_as_overwrite(self):
        # A new (domain, path) jar key but an existing name: name-level
        # detection treats it as an overwrite.
        log = log_with(writes=[
            write("user_id", domain="a.com", ts=1.0),
            write("user_id", kind="set", domain="b.com", ts=2.0,
                  raw="user_id=newvalue123; Path=/ads; Max-Age=100")])
        actions = detect_manipulations(log)
        assert actions[0].kind == "overwrite"
        assert "value" in actions[0].attrs_changed
        assert "path" in actions[0].attrs_changed
        assert "expires" in actions[0].attrs_changed

    def test_fresh_set_is_not_manipulation(self):
        log = log_with(writes=[write("new_cookie", domain="a.com")])
        assert detect_manipulations(log) == []

    def test_http_created_then_script_overwritten(self):
        log = log_with(
            headers=[header("srv_pref", ts=0.0)],
            writes=[write("srv_pref", kind="overwrite",
                          domain="tracker.com", ts=1.0)])
        actions = detect_manipulations(log)
        assert actions[0].pair.creator == SITE
        assert actions[0].actor == "tracker.com"

    def test_delete_of_unknown_cookie_ignored(self):
        log = log_with(writes=[write("never_set", kind="delete",
                                     domain="x.com")])
        assert detect_manipulations(log) == []

    def test_multiple_manipulators_counted_separately(self):
        log = log_with(writes=[
            write("_ga", domain="gtm.com", ts=1.0),
            write("_ga", kind="overwrite", domain="a.com", ts=2.0),
            write("_ga", kind="overwrite", domain="b.com", ts=3.0)])
        actors = {a.actor for a in detect_manipulations(log)}
        assert actors == {"a.com", "b.com"}
