"""RFC 6265 Set-Cookie parsing and matching algorithms."""

import pytest

from repro.cookies.cookie import (
    Cookie,
    SameSite,
    default_path,
    domain_match,
    parse_cookie_pair,
    parse_set_cookie,
    path_match,
)


class TestParseCookiePair:
    def test_simple(self):
        assert parse_cookie_pair("a=1") == ("a", "1")

    def test_whitespace(self):
        assert parse_cookie_pair("  a = 1 ") == ("a", "1")

    def test_quoted_value(self):
        assert parse_cookie_pair('a="hello"') == ("a", "hello")

    def test_value_with_equals(self):
        assert parse_cookie_pair("a=b=c") == ("a", "b=c")

    def test_bare_token(self):
        assert parse_cookie_pair("flag") == ("flag", "")

    def test_empty_name_rejected(self):
        assert parse_cookie_pair("=value") is None

    def test_empty_string(self):
        assert parse_cookie_pair("") is None


class TestDomainMatch:
    def test_exact(self):
        assert domain_match("example.com", "example.com")

    def test_subdomain(self):
        assert domain_match("www.example.com", "example.com")

    def test_leading_dot_normalized(self):
        assert domain_match("www.example.com", ".example.com")

    def test_superdomain_does_not_match(self):
        assert not domain_match("example.com", "www.example.com")

    def test_suffix_but_not_subdomain(self):
        assert not domain_match("badexample.com", "example.com")

    def test_case_insensitive(self):
        assert domain_match("WWW.Example.COM", "example.com")

    def test_empty_domain(self):
        assert not domain_match("example.com", "")


class TestPathMatch:
    def test_exact(self):
        assert path_match("/a/b", "/a/b")

    def test_prefix_with_trailing_slash(self):
        assert path_match("/a/b", "/a/")

    def test_prefix_with_boundary(self):
        assert path_match("/a/b", "/a")

    def test_non_boundary_prefix(self):
        assert not path_match("/ab", "/a")

    def test_root_matches_everything(self):
        assert path_match("/anything/here", "/")

    def test_empty_request_path(self):
        assert path_match("", "/")


class TestDefaultPath:
    def test_root(self):
        assert default_path("/") == "/"

    def test_single_segment(self):
        assert default_path("/page") == "/"

    def test_directory(self):
        assert default_path("/a/b/page") == "/a/b"

    def test_empty(self):
        assert default_path("") == "/"

    def test_no_leading_slash(self):
        assert default_path("page") == "/"


class TestParseSetCookie:
    def test_minimal(self):
        cookie = parse_set_cookie("sid=abc", request_host="example.com")
        assert cookie.name == "sid"
        assert cookie.value == "abc"
        assert cookie.domain == "example.com"
        assert cookie.host_only
        assert cookie.is_session

    def test_domain_attribute(self):
        cookie = parse_set_cookie("a=1; Domain=example.com",
                                  request_host="www.example.com")
        assert cookie.domain == "example.com"
        assert not cookie.host_only

    def test_domain_leading_dot_stripped(self):
        cookie = parse_set_cookie("a=1; Domain=.example.com",
                                  request_host="www.example.com")
        assert cookie.domain == "example.com"

    def test_foreign_domain_rejected(self):
        assert parse_set_cookie("a=1; Domain=other.com",
                                request_host="example.com") is None

    def test_superdomain_of_host_allowed(self):
        cookie = parse_set_cookie("a=1; Domain=example.com",
                                  request_host="deep.sub.example.com")
        assert cookie is not None

    def test_subdomain_of_host_rejected(self):
        assert parse_set_cookie("a=1; Domain=www.example.com",
                                request_host="example.com") is None

    def test_max_age(self):
        cookie = parse_set_cookie("a=1; Max-Age=100", request_host="e.com",
                                  now=50.0)
        assert cookie.expires == 150.0

    def test_max_age_wins_over_expires(self):
        cookie = parse_set_cookie("a=1; Expires=9999; Max-Age=10",
                                  request_host="e.com", now=0.0)
        assert cookie.expires == 10.0

    def test_expires_numeric(self):
        cookie = parse_set_cookie("a=1; Expires=500", request_host="e.com")
        assert cookie.expires == 500.0

    def test_expires_1970_deletion_sentinel(self):
        cookie = parse_set_cookie(
            "a=; Expires=Thu, 01 Jan 1970 00:00:00 GMT",
            request_host="e.com", now=100.0)
        assert cookie.is_expired(100.0)

    def test_unparseable_expires_dropped(self):
        cookie = parse_set_cookie("a=1; Expires=banana", request_host="e.com")
        assert cookie.expires is None

    def test_secure_flag(self):
        cookie = parse_set_cookie("a=1; Secure", request_host="e.com")
        assert cookie.secure

    def test_secure_rejected_from_insecure_context(self):
        assert parse_set_cookie("a=1; Secure", request_host="e.com",
                                secure_context=False) is None

    def test_httponly_from_http(self):
        cookie = parse_set_cookie("a=1; HttpOnly", request_host="e.com",
                                  from_http=True)
        assert cookie.http_only

    def test_script_cannot_set_httponly(self):
        cookie = parse_set_cookie("a=1; HttpOnly", request_host="e.com",
                                  from_http=False)
        assert cookie is not None
        assert not cookie.http_only

    def test_samesite_values(self):
        for raw, expected in (("Strict", SameSite.STRICT),
                              ("lax", SameSite.LAX),
                              ("none", SameSite.NONE)):
            cookie = parse_set_cookie(f"a=1; SameSite={raw}",
                                      request_host="e.com")
            assert cookie.same_site is expected

    def test_bad_samesite_defaults_lax(self):
        cookie = parse_set_cookie("a=1; SameSite=banana", request_host="e.com")
        assert cookie.same_site is SameSite.LAX

    def test_path_attribute(self):
        cookie = parse_set_cookie("a=1; Path=/sub", request_host="e.com")
        assert cookie.path == "/sub"

    def test_default_path_from_request(self):
        cookie = parse_set_cookie("a=1", request_host="e.com",
                                  request_path="/dir/page")
        assert cookie.path == "/dir"

    def test_host_prefix_valid(self):
        cookie = parse_set_cookie("__Host-sid=1; Secure; Path=/",
                                  request_host="e.com")
        assert cookie is not None

    def test_host_prefix_requires_secure(self):
        assert parse_set_cookie("__Host-sid=1; Path=/",
                                request_host="e.com") is None

    def test_host_prefix_rejects_domain(self):
        assert parse_set_cookie("__Host-sid=1; Secure; Path=/; Domain=e.com",
                                request_host="e.com") is None

    def test_secure_prefix_requires_secure(self):
        assert parse_set_cookie("__Secure-x=1", request_host="e.com") is None
        assert parse_set_cookie("__Secure-x=1; Secure",
                                request_host="e.com") is not None

    def test_nameless_rejected(self):
        assert parse_set_cookie("=1", request_host="e.com") is None

    def test_unknown_attributes_ignored(self):
        cookie = parse_set_cookie("a=1; Priority=High; Weird",
                                  request_host="e.com")
        assert cookie is not None


class TestCookieValue:
    def test_key_identity(self):
        cookie = Cookie(name="a", value="1", domain="e.com", path="/p")
        assert cookie.key == ("a", "e.com", "/p")

    def test_is_expired(self):
        cookie = Cookie(name="a", value="1", domain="e.com", expires=10.0)
        assert cookie.is_expired(10.0)
        assert not cookie.is_expired(9.9)

    def test_session_never_expires(self):
        cookie = Cookie(name="a", value="1", domain="e.com")
        assert not cookie.is_expired(1e12)

    def test_pair_format(self):
        assert Cookie(name="a", value="1", domain="e.com").pair() == "a=1"

    def test_touched_updates_access_time(self):
        cookie = Cookie(name="a", value="1", domain="e.com")
        assert cookie.touched(42.0).last_access_time == 42.0
