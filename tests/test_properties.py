"""Property-based tests on core data structures and invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exfiltration import split_candidates
from repro.analysis.filterlists import FilterRule, FilterRuleError
from repro.cookies.cookie import (
    Cookie,
    default_path,
    domain_match,
    parse_set_cookie,
    path_match,
)
from repro.cookies.jar import CookieJar
from repro.cookies.serialize import parse_cookie_string, to_cookie_string
from repro.encoding import b64, encoded_forms, md5_hex, sha1_hex
from repro.net.psl import public_suffix, registrable_domain
from repro.net.url import encode_qs, parse_qs, parse_url

# -- strategies ----------------------------------------------------------

label = st.text(alphabet=string.ascii_lowercase + string.digits,
                min_size=1, max_size=10)
hostnames = st.lists(label, min_size=1, max_size=4).map(".".join)
cookie_names = st.text(alphabet=string.ascii_letters + "_-", min_size=1,
                       max_size=16)
cookie_values = st.text(alphabet=string.ascii_letters + string.digits + "._-",
                        min_size=0, max_size=40)


# -- PSL -----------------------------------------------------------------

@given(hostnames)
def test_registrable_domain_is_suffix_of_host(host):
    domain = registrable_domain(host)
    if domain is not None:
        assert host == domain or host.endswith("." + domain)


@given(hostnames)
def test_public_suffix_is_suffix_of_registrable(host):
    domain = registrable_domain(host)
    suffix = public_suffix(host)
    if domain is not None and suffix is not None:
        assert domain.endswith(suffix)
        # eTLD+1 is exactly one label longer than the suffix.
        assert len(domain.split(".")) == len(suffix.split(".")) + 1


@given(hostnames)
def test_registrable_domain_idempotent(host):
    domain = registrable_domain(host)
    if domain is not None and "." in domain:
        assert registrable_domain(domain) == domain


@given(hostnames, label)
def test_subdomain_preserves_registrable_domain(host, sub):
    from repro.net.psl import DEFAULT_PSL
    combined = f"{sub}.{host}"
    if DEFAULT_PSL.is_ip(host) or DEFAULT_PSL.is_ip(combined):
        return  # adding a label can turn "0.0.0" into the IP "0.0.0.0"
    domain = registrable_domain(host)
    if domain is not None:
        assert registrable_domain(combined) == domain


# -- URL ------------------------------------------------------------------

@given(hostnames, st.integers(min_value=1, max_value=65535))
def test_url_str_reparses_identically(host, port):
    url = parse_url(f"https://{host}:{port}/p/a?x=1#f")
    assert parse_url(str(url)) == url


@given(st.dictionaries(label, label, min_size=0, max_size=5))
def test_qs_roundtrip(params):
    parsed = parse_qs(encode_qs(params))
    assert {k: v[0] for k, v in parsed.items()} == params


# -- cookie matching --------------------------------------------------------

@given(hostnames)
def test_domain_match_reflexive(host):
    assert domain_match(host, host)


@given(hostnames, label)
def test_domain_match_subdomain(host, sub):
    assert domain_match(f"{sub}.{host}", host)


@given(st.text(alphabet=string.ascii_lowercase + "/", max_size=20))
def test_path_match_reflexive(path):
    path = "/" + path.lstrip("/")
    assert path_match(path, path)


@given(st.text(alphabet=string.ascii_lowercase + "/", max_size=20))
def test_default_path_always_absolute(path):
    assert default_path(path).startswith("/")


@given(cookie_names, cookie_values, hostnames)
def test_parse_set_cookie_total(name, value, host):
    """Parsing never raises; it returns a Cookie or None."""
    result = parse_set_cookie(f"{name}={value}", request_host=host)
    if result is not None:
        assert result.name == name.strip()
        assert result.domain == host.lower().rstrip(".")


# -- cookie string serialization -----------------------------------------------

@given(st.lists(st.tuples(cookie_names, cookie_values), min_size=0,
                max_size=8))
def test_cookie_string_roundtrip(pairs):
    # Deduplicate names the way a jar would (one value per name+key).
    unique = {}
    for name, value in pairs:
        name = name.strip()
        if name and ";" not in value:
            unique[name] = value.strip().strip('"')
    cookies = [Cookie(name=n, value=v, domain="e.com")
               for n, v in unique.items()]
    parsed = dict(parse_cookie_string(to_cookie_string(cookies)))
    assert parsed == unique


# -- jar invariants -----------------------------------------------------------

@given(st.lists(st.tuples(cookie_names, cookie_values,
                          st.sampled_from(["/", "/a", "/a/b"])),
                min_size=1, max_size=30))
@settings(max_examples=50)
def test_jar_no_duplicate_keys(writes):
    jar = CookieJar()
    for name, value, path in writes:
        jar.set(Cookie(name=name.strip(), value=value, domain="e.com",
                       path=path))
    keys = [c.key for c in jar.all()]
    assert len(keys) == len(set(keys))


@given(st.lists(st.tuples(cookie_names, cookie_values), min_size=1,
                max_size=20))
@settings(max_examples=50)
def test_jar_set_then_delete_leaves_nothing(writes):
    jar = CookieJar()
    for name, value in writes:
        cookie = Cookie(name=name.strip(), value=value, domain="e.com")
        jar.set(cookie)
        jar.delete(cookie.name, cookie.domain, cookie.path)
    assert len(jar) == 0


# -- encodings ----------------------------------------------------------------

@given(st.text(alphabet=string.ascii_letters + string.digits, min_size=1,
               max_size=40))
def test_encoded_forms_distinct_and_deterministic(value):
    forms = encoded_forms(value)
    assert forms[0] == value
    assert forms == encoded_forms(value)
    assert forms[2] == md5_hex(value) and len(forms[2]) == 32
    assert forms[3] == sha1_hex(value) and len(forms[3]) == 40


@given(st.text(alphabet=string.ascii_letters + string.digits, min_size=1,
               max_size=60))
def test_b64_no_padding(value):
    assert "=" not in b64(value)


# -- exfiltration candidates -----------------------------------------------------

@given(st.text(max_size=80))
def test_split_candidates_all_long_alnum(value):
    for candidate in split_candidates(value):
        assert len(candidate) >= 8
        assert candidate.isalnum()


@given(st.text(alphabet=string.ascii_letters + string.digits, min_size=8,
               max_size=40),
       st.sampled_from([".", "|", "-", "%", " "]))
def test_split_candidates_finds_embedded_identifier(identifier, sep):
    value = f"prefix{sep}{identifier}{sep}xx"
    assert identifier in split_candidates(value)


# -- filter rules ------------------------------------------------------------------

@given(hostnames)
def test_domain_anchor_rule_matches_own_domain(host):
    rule = FilterRule(f"||{host}^")
    assert rule.matches(f"https://{host}/x.js")
    assert rule.matches(f"https://sub.{host}/x.js")


@given(hostnames, label)
def test_domain_anchor_rule_rejects_lookalike(host, prefix):
    rule = FilterRule(f"||{host}^")
    assert not rule.matches(f"https://{prefix}{host}.evil.test/x.js")
