"""The distributed crawl coordinator (ROADMAP rungs 3–4).

The contract under test: a :class:`Coordinator` run produces
*bit-for-bit* the serial pipeline's logs (hence identical ``Study``
results) for every worker backend, after injected worker crashes with
retry, across coordinator crash/resume, and across a cold-vs-warm
:class:`ShardStore` run — where the warm run executes **zero** visits.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.analysis import Study
from repro.cookieguard.policy import InlineMode, PolicyConfig
from repro.crawler import (
    CoordinationError,
    Coordinator,
    CrawlConfig,
    Crawler,
    InProcessBackend,
    ProcessPoolBackend,
    ShardStore,
    SubprocessBackend,
    config_fingerprint,
    load_logs,
    make_backend,
    population_fingerprint,
)
from repro.crawler.distributed import (
    FAULT_ONCE_ENV,
    QUEUE_NAME,
    QUEUE_VERSION,
    ShardOutcome,
    ShardTask,
    WorkQueue,
    WorkSpec,
    _config_from_dict,
    _config_to_dict,
    run_shard_worker,
)
from repro.crawler.storage import ShardManifest
from repro.ecosystem import PopulationConfig, generate_population

N_SITES = 48
SEED = 2025
N_SHARDS = 3


def _stream(logs):
    return [json.dumps(log.to_dict(), sort_keys=True)
            for log in sorted(logs, key=lambda log: log.rank)]


def _study_digest(logs):
    """A canonical rendering of the Study results for equality checks."""
    study = Study(logs)
    payload = {
        "sec51": study.sec51_prevalence(),
        "sec52": {k: str(v) for k, v in study.sec52_api_usage().items()},
        "sec56": study.sec56_inclusion(),
    }
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def small_population():
    return generate_population(PopulationConfig(n_sites=N_SITES, seed=SEED))


@pytest.fixture(scope="module")
def serial_logs(small_population):
    return Crawler(small_population, CrawlConfig(seed=SEED)).crawl()


@pytest.fixture(scope="module")
def serial_stream(serial_logs):
    return _stream(serial_logs)


class CountingBackend(InProcessBackend):
    """In-process backend that tallies the visits it actually executes."""

    def __init__(self):
        self.visits_executed = 0
        self.shards_executed = 0

    def run(self, ctx, tasks):
        for outcome in super().run(ctx, [t for t in tasks]):
            task = next(t for t in tasks if t.index == outcome.index)
            self.shards_executed += 1
            self.visits_executed += len(task.ranks)
            yield outcome


class FlakyBackend(InProcessBackend):
    """Fails each shard index in ``fail_once`` exactly once, then works."""

    def __init__(self, fail_once):
        self.remaining = set(fail_once)

    def run(self, ctx, tasks):
        healthy = []
        for task in tasks:
            if task.index in self.remaining:
                self.remaining.discard(task.index)
                yield ShardOutcome(index=task.index, ok=False,
                                   error="injected worker crash")
            else:
                healthy.append(task)
        yield from super().run(ctx, healthy)


class DeadBackend(InProcessBackend):
    """Every task fails, every time."""

    def run(self, ctx, tasks):
        for task in tasks:
            yield ShardOutcome(index=task.index, ok=False,
                               error="injected permanent failure")


# ---------------------------------------------------------------------------
# Backend equivalence (acceptance: bit-identical across all three)
# ---------------------------------------------------------------------------

class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def backend_runs(self, small_population, tmp_path_factory):
        """One coordinator run per backend; returns dir + report each."""
        runs = {}
        backends = {
            "inprocess": InProcessBackend(),
            "pool": ProcessPoolBackend(jobs=2),
            "subprocess": SubprocessBackend(jobs=2),
        }
        for name, backend in backends.items():
            out = tmp_path_factory.mktemp(f"dist-{name}")
            coordinator = Coordinator(small_population,
                                      CrawlConfig(seed=SEED),
                                      backend=backend)
            report = coordinator.run(out, n_shards=N_SHARDS)
            runs[name] = (out, report)
        return runs

    @pytest.mark.parametrize("name", ["inprocess", "pool", "subprocess"])
    def test_backend_matches_serial(self, backend_runs, serial_stream, name):
        out, report = backend_runs[name]
        assert _stream(load_logs(out)) == serial_stream
        assert report.executed_shards == N_SHARDS
        assert report.visits_executed == N_SITES

    def test_study_identical_across_backends(self, backend_runs,
                                             serial_logs):
        reference = _study_digest(serial_logs)
        for name, (out, _report) in backend_runs.items():
            assert _study_digest(load_logs(out)) == reference, name

    def test_manifests_identical_across_backends(self, backend_runs):
        manifests = {name: ShardManifest.load(out).to_dict()
                     for name, (out, _r) in backend_runs.items()}
        assert manifests["inprocess"] == manifests["pool"]
        assert manifests["inprocess"] == manifests["subprocess"]

    def test_manifest_records_digests(self, backend_runs):
        out, _report = backend_runs["inprocess"]
        manifest = ShardManifest.load(out)
        assert len(manifest.digests) == N_SHARDS
        assert all(d for d in manifest.digests)

    def test_make_backend_factory(self):
        assert make_backend("inprocess").name == "inprocess"
        assert make_backend("pool", jobs=3).name == "pool"
        assert make_backend("subprocess").name == "subprocess"
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("carrier-pigeon")

    def test_make_backend_respects_explicit_single_job(self):
        assert make_backend("pool", jobs=1).jobs == 1


# ---------------------------------------------------------------------------
# Durable queue
# ---------------------------------------------------------------------------

class TestWorkQueue:
    def test_journal_replay_roundtrip(self, small_population, tmp_path):
        out = tmp_path / "out"
        Coordinator(small_population, CrawlConfig(seed=SEED)).run(
            out, n_shards=N_SHARDS)
        queue = WorkQueue.load(out / QUEUE_NAME)
        assert len(queue.tasks) == N_SHARDS
        assert all(task.state == "done" for task in queue.in_order())
        assert all(task.sha256 for task in queue.in_order())

    def test_journal_is_jsonl(self, small_population, tmp_path):
        out = tmp_path / "out"
        Coordinator(small_population, CrawlConfig(seed=SEED)).run(
            out, n_shards=2)
        lines = (out / QUEUE_NAME).read_text().splitlines()
        events = [json.loads(line)["event"] for line in lines if line]
        assert events[0] == "plan"
        assert events.count("task") == 2
        assert events.count("done") == 2

    def test_lost_lease_becomes_pending(self, tmp_path):
        path = tmp_path / QUEUE_NAME
        records = [
            {"event": "plan", "version": QUEUE_VERSION, "run_key": "k", "n_shards": 2,
             "strategy": "contiguous"},
            {"event": "task", "index": 0, "ranks": [1, 2]},
            {"event": "task", "index": 1, "ranks": [3, 4]},
            {"event": "lease", "index": 0, "attempt": 1, "worker": "w"},
            {"event": "done", "index": 0, "file": "shard-0000.jsonl",
             "count": 2, "sha256": "abc", "source": "crawl"},
            {"event": "lease", "index": 1, "attempt": 2, "worker": "w"},
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        queue = WorkQueue.load(path)
        assert queue.tasks[0].state == "done"
        assert queue.tasks[1].state == "pending"   # lost worker
        assert queue.tasks[1].attempts == 2        # attempts survive
        assert [t.index for t in queue.unfinished()] == [1]

    def test_release_after_done_pins_the_recorded_digest(self, tmp_path):
        """done → lease → crash: the retry must reproduce the old bytes."""
        path = tmp_path / QUEUE_NAME
        records = [
            {"event": "plan", "version": QUEUE_VERSION, "run_key": "k", "n_shards": 1,
             "strategy": "contiguous"},
            {"event": "task", "index": 0, "ranks": [1, 2]},
            {"event": "lease", "index": 0, "attempt": 1, "worker": "w"},
            {"event": "done", "index": 0, "file": "shard-0000.jsonl",
             "count": 2, "sha256": "digest-of-attempt-1",
             "source": "crawl"},
            {"event": "lease", "index": 0, "attempt": 2, "worker": "w"},
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        queue = WorkQueue.load(path)
        task = queue.tasks[0]
        assert task.state == "pending"
        assert task.expected_sha256 == "digest-of-attempt-1"

    def test_corrupt_journal_raises(self, tmp_path):
        path = tmp_path / QUEUE_NAME
        path.write_text('{"event": "plan", "version": %d}\n' % QUEUE_VERSION)
        with pytest.raises(CoordinationError, match="corrupt queue"):
            WorkQueue.load(path)

    def test_pre_compact_serializer_queue_refused(self, tmp_path):
        """Version-1 journals recorded digests of the pre-PR5 shard
        bytes; resuming one must refuse up front, not fail later with a
        misleading determinism-break error."""
        path = tmp_path / QUEUE_NAME
        records = [
            {"event": "plan", "version": 1, "run_key": "k", "n_shards": 1,
             "strategy": "contiguous"},
            {"event": "task", "index": 0, "ranks": [1, 2]},
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        with pytest.raises(CoordinationError,
                           match="unsupported queue version 1"):
            WorkQueue.load(path)

    def test_foreign_queue_rejected(self, small_population, tmp_path):
        out = tmp_path / "out"
        Coordinator(small_population, CrawlConfig(seed=SEED)).run(
            out, n_shards=2)
        other = Coordinator(small_population, CrawlConfig(seed=7))
        with pytest.raises(CoordinationError, match="different crawl"):
            other.run(out, n_shards=2)


# ---------------------------------------------------------------------------
# Crash, retry, idempotence (acceptance: crash + retry stays bit-identical)
# ---------------------------------------------------------------------------

class TestCrashRetry:
    def test_flaky_backend_retries_to_identical_output(
            self, small_population, serial_stream, tmp_path):
        out = tmp_path / "out"
        coordinator = Coordinator(small_population, CrawlConfig(seed=SEED),
                                  backend=FlakyBackend(fail_once={1}),
                                  max_retries=2)
        report = coordinator.run(out, n_shards=N_SHARDS)
        assert report.retries == 1
        assert _stream(load_logs(out)) == serial_stream
        events = [json.loads(line)["event"]
                  for line in (out / QUEUE_NAME).read_text().splitlines()]
        assert "fail" in events and events.count("done") == N_SHARDS

    def test_retry_exhaustion_raises(self, small_population, tmp_path):
        coordinator = Coordinator(small_population, CrawlConfig(seed=SEED),
                                  backend=DeadBackend(), max_retries=1)
        with pytest.raises(CoordinationError, match="failed after 2 attempts"):
            coordinator.run(tmp_path / "out", n_shards=2)

    def test_zero_retries_fails_fast(self, small_population, tmp_path):
        coordinator = Coordinator(small_population, CrawlConfig(seed=SEED),
                                  backend=DeadBackend(), max_retries=0)
        with pytest.raises(CoordinationError, match="failed after 1 attempt"):
            coordinator.run(tmp_path / "out", n_shards=2)

    def test_resume_after_coordinator_crash(self, small_population,
                                            serial_stream, tmp_path):
        """A second coordinator over a half-done out_dir finishes the rest."""
        out = tmp_path / "out"
        # Crash mid-run: the first coordinator dies after one shard fails
        # terminally; the journal keeps the two completed shards.
        coordinator = Coordinator(small_population, CrawlConfig(seed=SEED),
                                  backend=FlakyBackend(fail_once={2}),
                                  max_retries=0)
        with pytest.raises(CoordinationError):
            coordinator.run(out, n_shards=N_SHARDS)
        resumed = Coordinator(small_population, CrawlConfig(seed=SEED),
                              backend=InProcessBackend(), max_retries=1)
        report = resumed.run(out, n_shards=N_SHARDS)
        assert report.reused_shards == 2
        assert report.executed_shards == 1
        assert _stream(load_logs(out)) == serial_stream


# ---------------------------------------------------------------------------
# Fault injection (run by the coordinator-faults CI job)
# ---------------------------------------------------------------------------

class TestFaultInjection:
    def test_killed_subprocess_worker_is_retried(
            self, small_population, serial_stream, tmp_path, monkeypatch):
        """Every worker is hard-killed once; retries still converge."""
        fault_dir = tmp_path / "faults"
        monkeypatch.setenv(FAULT_ONCE_ENV, str(fault_dir))
        out = tmp_path / "out"
        coordinator = Coordinator(small_population, CrawlConfig(seed=SEED),
                                  backend=SubprocessBackend(jobs=2),
                                  max_retries=2)
        report = coordinator.run(out, n_shards=2)
        assert report.retries == 2                 # each shard died once
        assert _stream(load_logs(out)) == serial_stream

    def test_truncated_shard_file_is_recrawled_and_verified(
            self, small_population, serial_stream, tmp_path):
        """Damage after completion: resume re-crawls and re-verifies."""
        out = tmp_path / "out"
        coordinator = Coordinator(small_population, CrawlConfig(seed=SEED))
        first = coordinator.run(out, n_shards=N_SHARDS)
        victim = out / first.manifest.files[1]
        victim.write_bytes(victim.read_bytes()[:-20])
        resumed = Coordinator(small_population, CrawlConfig(seed=SEED))
        report = resumed.run(out, n_shards=N_SHARDS)
        assert report.reused_shards == N_SHARDS - 1
        assert report.executed_shards == 1
        assert _stream(load_logs(out)) == serial_stream

    def test_retried_bytes_must_match_recorded_digest(
            self, small_population, tmp_path):
        """A journal digest a retry cannot reproduce is an error."""
        out = tmp_path / "out"
        coordinator = Coordinator(small_population, CrawlConfig(seed=SEED))
        first = coordinator.run(out, n_shards=2)
        queue_path = out / QUEUE_NAME
        doctored = []
        for line in queue_path.read_text().splitlines():
            record = json.loads(line)
            if record["event"] == "done" and record["index"] == 0:
                record["sha256"] = "0" * 64
            doctored.append(json.dumps(record))
        queue_path.write_text("\n".join(doctored) + "\n")
        (out / first.manifest.files[0]).unlink()
        resumed = Coordinator(small_population, CrawlConfig(seed=SEED))
        with pytest.raises(CoordinationError, match="determinism contract"):
            resumed.run(out, n_shards=2)

    def test_stale_cache_entry_is_evicted_and_recrawled(
            self, small_population, serial_stream, tmp_path):
        """Corrupt cached bytes cost a re-crawl, never wrong results."""
        store = ShardStore(tmp_path / "cache")
        cold = Coordinator(small_population, CrawlConfig(seed=SEED),
                           store=store)
        cold.run(tmp_path / "out1", n_shards=2)
        # Corrupt every cached object's data file in place.
        objects = list((tmp_path / "cache" / "objects").rglob("shard.jsonl"))
        assert objects
        for obj in objects:
            obj.write_bytes(obj.read_bytes() + b'{"bogus": 1}\n')
        backend = CountingBackend()
        warm = Coordinator(small_population, CrawlConfig(seed=SEED),
                           backend=backend, store=store)
        report = warm.run(tmp_path / "out2", n_shards=2)
        assert report.cached_shards == 0           # stale entries evicted
        assert backend.visits_executed == N_SITES  # full re-crawl
        assert _stream(load_logs(tmp_path / "out2")) == serial_stream
        # The re-crawl repopulated the cache with good bytes.
        rewarmed = Coordinator(small_population, CrawlConfig(seed=SEED),
                               backend=CountingBackend(), store=store)
        assert rewarmed.run(tmp_path / "out3", n_shards=2).cached_shards == 2


# ---------------------------------------------------------------------------
# The shard store (acceptance: warm run executes zero visits)
# ---------------------------------------------------------------------------

class TestShardStore:
    def test_cold_then_warm_run_zero_visits(self, small_population,
                                            serial_stream, tmp_path):
        store = ShardStore(tmp_path / "cache")
        cold_backend = CountingBackend()
        cold = Coordinator(small_population, CrawlConfig(seed=SEED),
                           backend=cold_backend, store=store)
        cold_report = cold.run(tmp_path / "cold", n_shards=N_SHARDS)
        assert cold_backend.visits_executed == N_SITES
        assert cold_report.cached_shards == 0

        warm_backend = CountingBackend()
        warm = Coordinator(small_population, CrawlConfig(seed=SEED),
                           backend=warm_backend, store=store)
        warm_report = warm.run(tmp_path / "warm", n_shards=N_SHARDS)
        assert warm_backend.visits_executed == 0
        assert warm_backend.shards_executed == 0
        assert warm_report.visits_executed == 0
        assert warm_report.cached_shards == N_SHARDS
        assert _stream(load_logs(tmp_path / "warm")) == serial_stream
        cold_manifest = ShardManifest.load(tmp_path / "cold")
        warm_manifest = ShardManifest.load(tmp_path / "warm")
        assert cold_manifest == warm_manifest

    def test_replanned_rerun_keys_by_ranks_not_index(self, small_population,
                                                     serial_stream,
                                                     tmp_path):
        """One Coordinator, two run() calls with different shard counts:
        the second plan's cache keys must derive from each task's ranks,
        never from a stale index-keyed memo of the first plan."""
        store = ShardStore(tmp_path / "cache")
        coordinator = Coordinator(small_population, CrawlConfig(seed=SEED),
                                  store=store)
        coordinator.run(tmp_path / "two", n_shards=2)
        coordinator.run(tmp_path / "three", n_shards=3)
        fresh = Coordinator(small_population, CrawlConfig(seed=SEED))
        fresh.run(tmp_path / "fresh-three", n_shards=3)
        for name in ("shard-0000.jsonl", "shard-0001.jsonl",
                     "shard-0002.jsonl"):
            assert (tmp_path / "three" / name).read_bytes() == \
                (tmp_path / "fresh-three" / name).read_bytes()
        assert _stream(load_logs(tmp_path / "three")) == serial_stream

    def test_store_roundtrip(self, tmp_path):
        store = ShardStore(tmp_path / "cache")
        payload = tmp_path / "shard-0000.jsonl"
        payload.write_text('{"x": 1}\n')
        key = ShardStore.shard_key("pop", "cfg", [1, 2, 3])
        assert store.fetch(key, tmp_path / "out", 0) is None
        store.put(key, payload, count=1, compress=False)
        fetched = store.fetch(key, tmp_path / "out", 4)
        assert fetched is not None
        assert fetched.count == 1
        assert (tmp_path / "out" / "shard-0004.jsonl").read_text() \
            == payload.read_text()


class TestShardStoreKeying:
    """The cache key covers outputs, never scheduling."""

    BASE = CrawlConfig(seed=SEED)

    def _key(self, config=None, pop_seed=SEED, ranks=(1, 2, 3)):
        pop_fp = population_fingerprint(
            PopulationConfig(n_sites=N_SITES, seed=pop_seed))
        return ShardStore.shard_key(pop_fp,
                                    config_fingerprint(config or self.BASE),
                                    ranks)

    def test_population_seed_changes_key(self):
        assert self._key(pop_seed=SEED) != self._key(pop_seed=SEED + 1)

    def test_crawl_seed_changes_key(self):
        assert self._key(CrawlConfig(seed=SEED)) \
            != self._key(CrawlConfig(seed=SEED + 1))

    def test_guard_policy_changes_key(self):
        plain = CrawlConfig(seed=SEED)
        guarded = CrawlConfig(seed=SEED, install_guard=True)
        permissive = CrawlConfig(
            seed=SEED, install_guard=True,
            guard_policy=PolicyConfig(inline_mode=InlineMode.RELAXED))
        keys = {self._key(plain), self._key(guarded), self._key(permissive)}
        assert len(keys) == 3

    def test_concurrency_changes_key(self):
        # Deliberately conservative: the engine proves concurrency never
        # changes a byte, but the cache does not lean on that proof.
        assert self._key(CrawlConfig(seed=SEED, concurrency=1)) \
            != self._key(CrawlConfig(seed=SEED, concurrency=8))

    def test_ranks_change_key(self):
        assert self._key(ranks=(1, 2, 3)) != self._key(ranks=(1, 2, 4))

    def test_shard_labels_do_not_change_key(self):
        labelled = CrawlConfig(seed=SEED, shard_index=3, shard_count=9)
        assert self._key(labelled) == self._key(CrawlConfig(seed=SEED))

    def test_jobs_and_backend_hit_the_warm_cache(self, small_population,
                                                 tmp_path):
        """Scheduling changes (jobs, backend) must not miss the cache."""
        store = ShardStore(tmp_path / "cache")
        cold = Coordinator(small_population, CrawlConfig(seed=SEED),
                           backend=ProcessPoolBackend(jobs=2), store=store)
        cold.run(tmp_path / "cold", n_shards=2)
        warm = Coordinator(small_population, CrawlConfig(seed=SEED),
                           backend=InProcessBackend(), store=store)
        report = warm.run(tmp_path / "warm", n_shards=2)
        assert report.cached_shards == 2
        assert report.visits_executed == 0

    def test_concurrency_change_misses_the_warm_cache(self, small_population,
                                                      tmp_path):
        store = ShardStore(tmp_path / "cache")
        Coordinator(small_population, CrawlConfig(seed=SEED),
                    store=store).run(tmp_path / "cold", n_shards=2)
        changed = Coordinator(small_population,
                              CrawlConfig(seed=SEED, concurrency=4),
                              store=store)
        report = changed.run(tmp_path / "warm", n_shards=2)
        assert report.cached_shards == 0
        assert report.executed_shards == 2


# ---------------------------------------------------------------------------
# The worker protocol
# ---------------------------------------------------------------------------

class TestWorkerProtocol:
    def test_workspec_roundtrip(self, small_population, tmp_path):
        from repro.crawler import ShardPlan
        plan = ShardPlan.for_population(small_population, 3)
        spec = WorkSpec.build(small_population, CrawlConfig(seed=SEED),
                              plan, compress=True, keep_incomplete=False)
        spec.save(tmp_path)
        loaded = WorkSpec.load(tmp_path / "workspec.json")
        assert loaded == spec

    def test_config_dict_roundtrip_with_policy(self):
        config = CrawlConfig(
            seed=7, max_clicks=1, install_guard=True,
            guard_policy=PolicyConfig(inline_mode=InlineMode.RELAXED,
                                      owner_full_access=False),
            concurrency=3)
        restored = _config_from_dict(_config_to_dict(config))
        assert restored.seed == 7
        assert restored.guard_policy.inline_mode is InlineMode.RELAXED
        assert restored.guard_policy.owner_full_access is False
        assert config_fingerprint(restored) == config_fingerprint(config)

    def test_entity_whitelist_policy_not_serializable(self):
        config = CrawlConfig(
            install_guard=True,
            guard_policy=PolicyConfig(entity_of=lambda domain: None))
        with pytest.raises(CoordinationError, match="entity_of"):
            _config_to_dict(config)

    def test_entity_whitelist_policy_refuses_the_cache(self, tmp_path,
                                                       small_population):
        """entity_of fingerprints as a presence bit, so no ShardStore."""
        config = CrawlConfig(
            install_guard=True,
            guard_policy=PolicyConfig(entity_of=lambda domain: None))
        with pytest.raises(CoordinationError, match="shard cache"):
            Coordinator(small_population, config,
                        store=ShardStore(tmp_path / "cache"))
        # Without a store the same config is fine (in-process backends).
        Coordinator(small_population, config)

    def test_run_shard_worker_matches_coordinator(self, small_population,
                                                  serial_stream, tmp_path):
        """A bare worker produces the exact shard the coordinator records."""
        from repro.crawler import ShardPlan
        plan = ShardPlan.for_population(small_population, 2)
        spec = WorkSpec.build(small_population, CrawlConfig(seed=SEED),
                              plan, compress=False, keep_incomplete=False)
        spec_path = spec.save(tmp_path)
        results = [run_shard_worker(spec_path, index) for index in range(2)]
        out = tmp_path / "coordinated"
        report = Coordinator(small_population, CrawlConfig(seed=SEED)).run(
            out, n_shards=2)
        assert [r["sha256"] for r in results] \
            == list(report.manifest.digests)
        worker_logs = [log for r in results
                       for log in load_logs(tmp_path / r["file"])]
        assert _stream(worker_logs) == serial_stream

    def test_worker_rejects_bad_index(self, small_population, tmp_path):
        from repro.crawler import ShardPlan
        plan = ShardPlan.for_population(small_population, 2)
        spec = WorkSpec.build(small_population, CrawlConfig(seed=SEED),
                              plan, compress=False, keep_incomplete=False)
        spec_path = spec.save(tmp_path)
        with pytest.raises(CoordinationError, match="out of range"):
            run_shard_worker(spec_path, 5)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------

class TestFingerprints:
    def test_population_fingerprint_stable(self, small_population):
        assert population_fingerprint(small_population) \
            == population_fingerprint(
                PopulationConfig(n_sites=N_SITES, seed=SEED))

    def test_population_sites_change_fingerprint(self):
        a = population_fingerprint(PopulationConfig(n_sites=10, seed=1))
        b = population_fingerprint(PopulationConfig(n_sites=11, seed=1))
        assert a != b

    def test_config_fingerprint_ignores_shard_labels(self):
        a = config_fingerprint(CrawlConfig(seed=1))
        b = config_fingerprint(CrawlConfig(seed=1, shard_index=4,
                                           shard_count=8))
        assert a == b

    def test_config_fingerprint_covers_guard_switches(self):
        base = CrawlConfig(seed=1)
        variants = [
            CrawlConfig(seed=1, install_guard=True),
            CrawlConfig(seed=1, install_guard=True, guard_uncloak_dns=True),
            CrawlConfig(seed=1, interact=False),
            CrawlConfig(seed=1, max_clicks=1),
        ]
        fingerprints = {config_fingerprint(c) for c in [base] + variants}
        assert len(fingerprints) == len(variants) + 1


# ---------------------------------------------------------------------------
# The slow distributed determinism matrix (CI: determinism-matrix job)
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestDistributedMatrix:
    """Backend × shard strategy × compression, all bit-identical."""

    @pytest.mark.parametrize("backend_name",
                             ["inprocess", "pool", "subprocess"])
    @pytest.mark.parametrize("strategy", ["contiguous", "stride"])
    @pytest.mark.parametrize("compress", [False, True],
                             ids=["plain", "gzip"])
    def test_full_matrix_matches_serial(self, small_population,
                                        serial_stream, tmp_path,
                                        backend_name, strategy, compress):
        backend = make_backend(backend_name, jobs=2)
        coordinator = Coordinator(small_population, CrawlConfig(seed=SEED),
                                  backend=backend, strategy=strategy,
                                  compress=compress)
        report = coordinator.run(tmp_path / "out", n_shards=N_SHARDS)
        assert report.executed_shards == N_SHARDS
        assert _stream(load_logs(tmp_path / "out")) == serial_stream

    @pytest.mark.parametrize("strategy", ["contiguous", "stride"])
    def test_warm_cache_matches_serial_per_strategy(self, small_population,
                                                    serial_stream, tmp_path,
                                                    strategy):
        store = ShardStore(tmp_path / "cache")
        Coordinator(small_population, CrawlConfig(seed=SEED), store=store,
                    strategy=strategy).run(tmp_path / "cold",
                                           n_shards=N_SHARDS)
        warm = Coordinator(small_population, CrawlConfig(seed=SEED),
                           store=store, strategy=strategy)
        report = warm.run(tmp_path / "warm", n_shards=N_SHARDS)
        assert report.visits_executed == 0
        assert _stream(load_logs(tmp_path / "warm")) == serial_stream


# ---------------------------------------------------------------------------
# Crash-resume: torn journal tails (the crash window _append leaves open)
# ---------------------------------------------------------------------------

def _journal_header(n_shards=2):
    records = [{"event": "plan", "version": QUEUE_VERSION, "run_key": "k",
                "n_shards": n_shards, "strategy": "contiguous"}]
    records += [{"event": "task", "index": i, "ranks": [2 * i + 1, 2 * i + 2]}
                for i in range(n_shards)]
    return records


class TestTornJournalTail:
    """A crash mid-append leaves a truncated final line; loading must
    tolerate exactly that — and nothing more."""

    def test_torn_final_line_is_dropped_with_warning(self, tmp_path):
        path = tmp_path / QUEUE_NAME
        records = _journal_header() + [
            {"event": "lease", "index": 0, "attempt": 1, "worker": "w"},
        ]
        text = "\n".join(json.dumps(r) for r in records) + "\n"
        torn = json.dumps({"event": "done", "index": 0,
                           "file": "shard-0000.jsonl", "count": 2,
                           "sha256": "abc", "source": "crawl"})
        path.write_text(text + torn[:len(torn) // 2])
        with pytest.warns(RuntimeWarning, match="torn final line"):
            queue = WorkQueue.load(path)
        # The torn done never happened: the lease is a lost worker and
        # the shard is replayed (idempotent re-execution is safe).
        assert queue.tasks[0].state == "pending"
        assert queue.tasks[0].attempts == 1
        assert queue.tasks[1].state == "pending"

    def test_mid_file_corruption_still_hard_errors(self, tmp_path):
        path = tmp_path / QUEUE_NAME
        records = _journal_header()
        lines = [json.dumps(r) for r in records]
        lines[1] = lines[1][:10]                 # torn, but NOT the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CoordinationError, match="corrupt queue"):
            WorkQueue.load(path)

    def test_torn_tail_does_not_mask_semantic_errors(self, tmp_path):
        """Only undecodable JSON is tolerated at the tail; a final line
        that parses but is semantically wrong stays a hard error."""
        path = tmp_path / QUEUE_NAME
        records = _journal_header() + [
            {"event": "no-such-event", "index": 0},
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        with pytest.raises(CoordinationError, match="unknown event"):
            WorkQueue.load(path)

    def test_resume_after_torn_append(self, small_population, serial_stream,
                                      tmp_path):
        """Integration: truncate the journal mid-byte after a full run;
        a resuming coordinator replays the lost shard and converges to
        the serial bytes.  (This load crashed with CoordinationError
        before torn-tail tolerance existed.)"""
        out = tmp_path / "out"
        Coordinator(small_population, CrawlConfig(seed=SEED)).run(
            out, n_shards=N_SHARDS)
        queue_path = out / QUEUE_NAME
        raw = queue_path.read_bytes().rstrip(b"\n")
        queue_path.write_bytes(raw[:-7])         # tear the last done record
        resumed = Coordinator(small_population, CrawlConfig(seed=SEED),
                              backend=CountingBackend())
        with pytest.warns(RuntimeWarning, match="torn final line"):
            report = resumed.run(out, n_shards=N_SHARDS)
        assert report.executed_shards == 1       # only the torn-away shard
        assert report.reused_shards == N_SHARDS - 1
        assert _stream(load_logs(out)) == serial_stream


# ---------------------------------------------------------------------------
# Worker protocol: the result log survives a parse failure
# ---------------------------------------------------------------------------

class TestWorkerLogRetention:
    def _finish(self, tmp_path, log_text):
        from types import SimpleNamespace
        backend = SubprocessBackend(jobs=1)
        log_path = tmp_path / ".worker-0000.log"
        log_path.write_text(log_text)
        task = ShardTask(index=0, of=1, ranks=(1,))
        proc = SimpleNamespace(returncode=0)
        return backend._finish(task, proc, log_path), log_path

    def test_unparseable_result_keeps_log_and_names_it(self, tmp_path):
        """Before the fix, _finish unlinked the log before scanning it
        for a result line — destroying the only diagnostic evidence of
        what the worker actually printed."""
        outcome, log_path = self._finish(
            tmp_path, "Traceback (most recent call last):\n  boom\n")
        assert not outcome.ok
        assert str(log_path) in outcome.error
        assert log_path.exists()                 # evidence survives
        assert "boom" in log_path.read_text()

    def test_successful_parse_unlinks_log(self, tmp_path):
        result = json.dumps({"file": "shard-0000.jsonl", "count": 1,
                             "sha256": "abc"})
        outcome, log_path = self._finish(
            tmp_path, f"some stderr chatter\n{result}\n")
        assert outcome.ok and outcome.sha256 == "abc"
        assert not log_path.exists()             # clean on success

    def test_nonzero_exit_reports_tail(self, tmp_path):
        from types import SimpleNamespace
        backend = SubprocessBackend(jobs=1)
        log_path = tmp_path / ".worker-0000.log"
        log_path.write_text("x\nlast line of output\n")
        task = ShardTask(index=0, of=1, ranks=(1,))
        outcome = backend._finish(task, SimpleNamespace(returncode=3),
                                  log_path)
        assert not outcome.ok
        assert "exited 3" in outcome.error
        assert "last line of output" in outcome.error


# ---------------------------------------------------------------------------
# Durability: completions reach stable storage before anyone acts on them
# ---------------------------------------------------------------------------

class TestDurabilityFsync:
    @pytest.fixture()
    def fsync_calls(self, monkeypatch):
        calls = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            calls.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        return calls

    def test_queue_appends_fsync(self, tmp_path, fsync_calls):
        # Build via journal replay to avoid depending on plan internals.
        path = tmp_path / QUEUE_NAME
        path.write_text("\n".join(json.dumps(r) for r in _journal_header(1))
                        + "\n")
        queue = WorkQueue.load(path)
        task = queue.tasks[0]
        before = len(fsync_calls)
        queue.lease(task, worker="w")
        queue.done(task, file="shard-0000.jsonl", count=2, sha256="abc",
                   source="crawl")
        queue.fail(task, error="x")
        assert len(fsync_calls) == before + 3    # one fsync per append

    def test_manifest_save_fsyncs_tmp_before_rename(self, tmp_path,
                                                    fsync_calls):
        manifest = ShardManifest(n_shards=1, total=1, compress=False,
                                 files=("shard-0000.jsonl",), counts=(1,),
                                 digests=("0" * 64,))
        before = len(fsync_calls)
        manifest.save(tmp_path)
        assert len(fsync_calls) == before + 1
        assert ShardManifest.load(tmp_path).to_dict() == manifest.to_dict()


# ---------------------------------------------------------------------------
# Lease deadlines: hung workers are killed, evidenced, and retried
# ---------------------------------------------------------------------------

class TestTaskDeadline:
    def test_coordinator_rejects_nonpositive_timeout(self, small_population):
        for bad in (0, -1.5):
            with pytest.raises(ValueError):
                Coordinator(small_population, CrawlConfig(seed=SEED),
                            task_timeout=bad)

    def test_timeout_flows_into_work_context(self, small_population,
                                             tmp_path):
        captured = []

        class Probe(InProcessBackend):
            def run(self, ctx, tasks):
                captured.append(ctx.task_timeout)
                return super().run(ctx, tasks)

        Coordinator(small_population, CrawlConfig(seed=SEED),
                    backend=Probe(), task_timeout=12.5).run(
            tmp_path / "crawl", n_shards=N_SHARDS)
        assert captured == [12.5]

    def test_kill_on_deadline_preserves_log_and_names_it(self, tmp_path):
        import subprocess
        import sys
        backend = SubprocessBackend(jobs=1)
        log_path = tmp_path / ".worker-0000-a01.log"
        log_path.write_text("partial worker chatter\n")
        task = ShardTask(index=0, of=1, ranks=(1,), attempts=1)
        proc = subprocess.Popen([sys.executable, "-c",
                                 "import time; time.sleep(600)"])
        outcome = backend._kill_on_deadline(task, proc, log_path, 1.5)
        assert proc.poll() is not None          # actually dead
        assert not outcome.ok
        assert outcome.index == 0
        assert "exceeded task deadline" in outcome.error
        assert "1.5" in outcome.error
        assert str(log_path) in outcome.error   # evidence is named...
        assert log_path.exists()                # ...and survives
        assert "partial worker chatter" in log_path.read_text()

    def test_attempt_suffixed_logs_never_clobber_prior_evidence(self):
        # The poll loop names logs .worker-NNNN-aAA.log by lease
        # attempt, so a deadline-killed attempt's kept log can't be
        # truncated by its own retry reopening the same filename.
        first = f".worker-{0:04d}-a{1:02d}.log"
        retry = f".worker-{0:04d}-a{2:02d}.log"
        assert first != retry
