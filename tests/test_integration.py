"""End-to-end scenarios, including the paper's three case studies."""

import numpy as np
import pytest

from repro.analysis import Study, detect_exfiltration, detect_manipulations
from repro.analysis.attribution import build_ownership
from repro.browser.browser import Browser
from repro.browser.scripts import Script
from repro.cookieguard.guard import CookieGuardExtension
from repro.crawler import CrawlConfig, Crawler
from repro.ecosystem import PopulationConfig, generate_population
from repro.ecosystem.behaviors import build_behavior
from repro.ecosystem.catalog import service_index
from repro.extension.instrumentation import InstrumentationExtension


def crawl_single(site_spec, population, guard=False):
    crawler = Crawler(population, CrawlConfig(seed=2025, install_guard=guard))
    return crawler.visit_site(site_spec)


@pytest.fixture(scope="module")
def services():
    return service_index()


class TestOptimonkCaseStudy:
    """§5.4: LinkedIn's insight tag Base64-exfiltrates GTM's _ga."""

    @pytest.fixture(scope="class")
    def log(self, population):
        site = [s for s in population.sites if s.domain == "optimonk.com"][0]
        crawler = Crawler(population, CrawlConfig(seed=2025))
        return crawler.visit_site(site)

    def test_ga_created_by_gtm(self, log):
        ownership = build_ownership(log)
        assert ownership.creators.get("_ga") == "googletagmanager.com"

    def test_linkedin_exfiltrates_ga_base64(self, log):
        events = [e for e in detect_exfiltration(log)
                  if e.actor == "licdn.com" and e.pair.name == "_ga"]
        assert events
        assert any(e.matched_form == "b64" for e in events)

    def test_linkedin_request_targets_px_ads(self, log):
        pixel = [r for r in log.requests
                 if r.script_domain == "licdn.com"
                 and "px.ads.linkedin.com" in r.url]
        assert pixel


class TestGoosecreekCaseStudy:
    """§5.4: Osano (a CMP!) forwards facebook.net's _fbp to Criteo."""

    @pytest.fixture(scope="class")
    def log(self, population):
        site = [s for s in population.sites
                if s.domain == "goosecreekcandle.com"][0]
        return Crawler(population, CrawlConfig(seed=2025)).visit_site(site)

    def test_fbp_created_by_facebook(self, log):
        assert build_ownership(log).creators.get("_fbp") == "facebook.net"

    def test_osano_sends_fbp_to_criteo(self, log):
        events = [e for e in detect_exfiltration(log)
                  if e.actor == "osano.com" and e.pair.name == "_fbp"]
        assert events
        assert any("criteo" in e.destination for e in events)


class TestCtoBundleCaseStudy:
    """§5.5: Pubmatic overwrites Criteo's cto_bundle (competition)."""

    def test_pubmatic_clobbers_cto_bundle(self, services):
        criteo = services["criteo-onetag"].with_overrides(children=(),
                                                          child_count=(0, 0))
        pubmatic = services["pubmatic"].with_overrides(
            children=(), child_count=(0, 0), overwrite_prob=1.0)
        browser = Browser(rng=np.random.default_rng(1))
        inst = InstrumentationExtension()
        browser.install(inst)
        page = browser.visit("https://shop.example/", scripts=[
            Script.external(criteo.script_url,
                            behavior=build_behavior(criteo)),
            Script.external(pubmatic.script_url,
                            behavior=build_behavior(pubmatic))])
        log = inst.log_for(page)
        actions = [a for a in detect_manipulations(log)
                   if a.pair.name == "cto_bundle"]
        assert actions
        assert actions[0].actor == "pubmatic.com"
        assert actions[0].pair.creator == "criteo.com"


class TestGuardEndToEnd:
    def test_guard_blocks_case_study_exfiltration(self, population):
        site = [s for s in population.sites if s.domain == "optimonk.com"][0]
        regular = crawl_single(site, population, guard=False)
        guarded = crawl_single(site, population, guard=True)
        regular_thefts = [e for e in detect_exfiltration(regular)
                          if e.actor == "licdn.com"]
        guarded_thefts = [e for e in detect_exfiltration(guarded)
                          if e.actor == "licdn.com"]
        assert regular_thefts
        assert not guarded_thefts

    def test_guard_preserves_first_party_session(self, population):
        site = population.successful_sites()[0]
        log = crawl_single(site, population, guard=True)
        fp_writes = [w for w in log.cookie_writes
                     if w.cookie_name == "fp_session"
                     and w.kind in ("set", "overwrite")]
        assert fp_writes


class TestCloakingEvasion:
    """§8: CNAME-cloaked trackers evade URL-based attribution."""

    def test_cloaked_tracker_treated_as_owner(self, population, services):
        cloaked_sites = [s for s in population.successful_sites()
                         if s.cloaked_services]
        if not cloaked_sites:
            pytest.skip("no cloaked site in sample")
        site = cloaked_sites[0]
        log = crawl_single(site, population, guard=True)
        # The cloaked script's writes were attributed to the site itself.
        cloaked_writes = [w for w in log.cookie_writes
                          if w.script_url
                          and w.script_url.startswith(
                              f"https://metrics.{site.domain}")]
        for write in cloaked_writes:
            assert write.script_domain == site.domain
            assert write.kind != "blocked"


class TestFullPipeline:
    def test_study_runs_on_guarded_logs(self, guarded_logs):
        study = Study(guarded_logs)
        rows = {(r.cookie_type, r.action): r for r in study.table1()}
        regular_like = rows[("document.cookie", "exfiltration")]
        assert regular_like.pct_websites < 25  # guard collapses prevalence

    def test_deterministic_end_to_end(self):
        def run():
            population = generate_population(
                PopulationConfig(n_sites=60, seed=77))
            logs = Crawler(population, CrawlConfig(seed=77)).crawl()
            study = Study(logs)
            return [(r.pct_websites, r.n_cookies) for r in study.table1()]

        assert run() == run()
