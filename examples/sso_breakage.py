#!/usr/bin/env python3
"""Why CookieGuard breaks some SSO flows — and how entity grouping fixes it.

zoom.us-style login: microsoft.com's script sets the session cookie,
live.com's script reads it.  Different eTLD+1s, same corporate entity.

Run:  python examples/sso_breakage.py
"""

from repro.analysis.entities import default_entity_map
from repro.browser import Browser, Script
from repro.cookieguard import CookieGuardExtension, PolicyConfig


def sso_flow(policy=None) -> bool:
    """Run the two-provider login flow; True = session survived."""
    browser = Browser()
    browser.install(CookieGuardExtension(policy))
    outcome = {}

    def microsoft_login(js):
        js.set_cookie(f"sso_session=tok-abc123; Domain={js.site_domain}; "
                      "Path=/; Max-Age=3600")

    def live_session_check(js):
        outcome["ok"] = "sso_session" in js.get_cookie()

    browser.visit("https://zoom.us/", scripts=[
        Script.external("https://login.microsoft.com/oauth/sso.js",
                        behavior=microsoft_login, label="microsoft"),
        Script.external("https://login.live.com/sso/auth.js",
                        behavior=live_session_check, label="live")])
    return outcome["ok"]


def main():
    print("SSO flow: microsoft.com sets sso_session, live.com reads it.\n")

    ok = sso_flow()
    print(f"1) CookieGuard, strict isolation: "
          f"{'login works' if ok else 'LOGIN BROKEN (the 11% in Table 3)'}")

    entities = default_entity_map()
    policy = PolicyConfig(entity_of=entities.entity_of)
    ok = sso_flow(policy)
    print(f"2) CookieGuard + entity whitelist (microsoft.com and live.com "
          f"are both Microsoft):\n   "
          f"{'login works (the 3% fix)' if ok else 'still broken'}")


if __name__ == "__main__":
    main()
