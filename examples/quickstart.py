#!/usr/bin/env python3
"""Quickstart: watch a third-party script raid the first-party cookie jar,
then watch CookieGuard stop it.

Run:  python examples/quickstart.py
"""

from repro import (
    Browser,
    CookieGuardExtension,
    InstrumentationExtension,
    Script,
)


def analytics_tag(js):
    """A gtag.js-style script: sets _ga, phones home."""
    js.set_cookie("_ga=GA1.1.444332364.1746838827; "
                  f"Domain={js.site_domain}; Path=/; Max-Age=63072000")
    js.load_image("https://www.google-analytics.com/collect",
                  params={"cid": "444332364"})


def sneaky_pixel(js):
    """A conversion pixel that harvests identifiers it never set."""
    jar = js.get_cookie()
    print(f"    pixel sees the jar as: {jar!r}")
    js.load_image("https://px.ads.tracker.example/attribution",
                  params={"payload": jar.replace("; ", "*")})
    # ... and tries to take over the _ga identifier:
    js.set_cookie(f"_ga=HIJACKED.BY.PIXEL; Domain={js.site_domain}; Path=/")


def visit(with_guard: bool):
    browser = Browser()
    guard = None
    if with_guard:
        guard = CookieGuardExtension()
        browser.install(guard)
    instrumentation = InstrumentationExtension()
    browser.install(instrumentation)

    page = browser.visit("https://shop.example.com/", scripts=[
        Script.external("https://www.googletagmanager.com/gtag.js",
                        behavior=analytics_tag, label="gtag"),
        Script.external("https://px.ads.tracker.example/pixel.js",
                        behavior=sneaky_pixel, label="pixel"),
    ])

    ga = page.jar.find("_ga")[0]
    print(f"    _ga after the visit: {ga.value!r}")
    exfil = [r for r in page.network.requests
             if "tracker.example" in r.url.host and "444332364" in r.url.query]
    print(f"    identifier exfiltrated: {'YES' if exfil else 'no'}")
    if guard is not None:
        print(f"    guard blocked writes: {guard.blocked_writes}, "
              f"filtered reads: {guard.filtered_cookie_reads}")


def main():
    print("1) Regular browser — no isolation in the main frame:")
    visit(with_guard=False)
    print()
    print("2) Same page with CookieGuard — per-script-domain isolation:")
    visit(with_guard=True)


if __name__ == "__main__":
    main()
