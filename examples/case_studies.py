#!/usr/bin/env python3
"""The paper's three §5.4/§5.5 case studies, reproduced end-to-end.

1. optimonk.com — LinkedIn's insight tag parses GTM's `_ga`, Base64-encodes
   the client id, and ships it to px.ads.linkedin.com.
2. goosecreekcandle.com — Osano (a consent-management script!) forwards
   facebook.net's `_fbp` to Criteo's sslwidget endpoint.
3. Criteo vs Pubmatic — `cto_bundle` is overwritten cross-domain
   (collusion-or-competition).

Run:  python examples/case_studies.py
"""

import numpy as np

from repro.analysis import detect_exfiltration, detect_manipulations
from repro.analysis.attribution import build_ownership
from repro.browser import Browser, Script
from repro.crawler import CrawlConfig, Crawler
from repro.ecosystem import PopulationConfig, generate_population
from repro.ecosystem.behaviors import build_behavior
from repro.ecosystem.catalog import service_index
from repro.extension import InstrumentationExtension


def case_optimonk(population):
    print("== Case 1: targeted parsing on optimonk.com ==")
    site = [s for s in population.sites if s.domain == "optimonk.com"][0]
    log = Crawler(population, CrawlConfig(seed=2025)).visit_site(site)
    ownership = build_ownership(log)
    print(f"  _ga creator: {ownership.creators.get('_ga')}")
    print(f"  _ga value:   {ownership.values['_ga'][0]}")
    for event in detect_exfiltration(log):
        if event.actor == "licdn.com" and event.pair.name == "_ga":
            print(f"  licdn.com exfiltrated ({event.matched_form}) -> "
                  f"{event.destination}")
            print(f"  URL: {event.url[:110]}...")


def case_goosecreek(population):
    print("\n== Case 2: cross-company sharing on goosecreekcandle.com ==")
    site = [s for s in population.sites
            if s.domain == "goosecreekcandle.com"][0]
    log = Crawler(population, CrawlConfig(seed=2025)).visit_site(site)
    ownership = build_ownership(log)
    print(f"  _fbp creator: {ownership.creators.get('_fbp')}")
    print(f"  _fbp value:   {ownership.values['_fbp'][0]}")
    for event in detect_exfiltration(log):
        if event.actor == "osano.com":
            print(f"  osano.com (a CMP) sent {event.pair.name} -> "
                  f"{event.destination}")


def case_cto_bundle():
    print("\n== Case 3: cto_bundle overwriting (Criteo vs Pubmatic) ==")
    services = service_index()
    criteo = services["criteo-onetag"].with_overrides(children=(),
                                                      child_count=(0, 0))
    pubmatic = services["pubmatic"].with_overrides(
        children=(), child_count=(0, 0), overwrite_prob=1.0)
    browser = Browser(rng=np.random.default_rng(1))
    instrumentation = InstrumentationExtension()
    browser.install(instrumentation)
    page = browser.visit("https://shop.example/", scripts=[
        Script.external(criteo.script_url, behavior=build_behavior(criteo)),
        Script.external(pubmatic.script_url,
                        behavior=build_behavior(pubmatic))])
    log = instrumentation.log_for(page)
    before = [w for w in log.cookie_writes
              if w.cookie_name == "cto_bundle" and w.kind == "set"][0]
    for action in detect_manipulations(log):
        if action.pair.name == "cto_bundle":
            after = page.jar.find("cto_bundle")[0]
            print(f"  creator:   {action.pair.creator} "
                  f"(value length {len(before.cookie_value)})")
            print(f"  overwriter: {action.actor} "
                  f"(new value length {len(after.value)})")
            print(f"  attributes changed: {', '.join(action.attrs_changed)}")


def main():
    population = generate_population(PopulationConfig(n_sites=400, seed=2025))
    case_optimonk(population)
    case_goosecreek(population)
    case_cto_bundle()


if __name__ == "__main__":
    main()
