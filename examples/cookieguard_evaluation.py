#!/usr/bin/env python3
"""The §7 CookieGuard evaluation: Figure 5, Table 3, and Table 4.

Run:  python examples/cookieguard_evaluation.py [n_sites]
      (default 1000)
"""

import sys

from repro.ecosystem import PopulationConfig, generate_population
from repro.evaluation import (
    evaluate_access_control,
    evaluate_breakage,
    evaluate_performance,
)


def main():
    n_sites = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    population = generate_population(PopulationConfig(n_sites=n_sites,
                                                      seed=2025))

    print("== Figure 5 — access control (paper reductions: overwrite "
          "82.2%, delete 86.2%, exfil 83.2%) ==")
    access = evaluate_access_control(population, population.sites)
    print(access.render())

    print("\n== Table 3 — breakage on 100 random sites "
          "(paper: SSO 1%/11%, functionality 3%/3%) ==")
    top_k = max(s.rank for s in population.sites)
    plain = evaluate_breakage(population, sample_size=100, top_k=top_k)
    print(plain.render())
    whitelisted = evaluate_breakage(population, sample_size=100, top_k=top_k,
                                    use_entity_whitelist=True)
    print("\nwith the DuckDuckGo-entities whitelist (paper: SSO 11% -> 3%):")
    print(whitelisted.render())
    print(f"SSO broken: {plain.pct_sites_sso_broken:.0f}% -> "
          f"{whitelisted.pct_sites_sso_broken:.0f}%")

    print("\n== Table 4 — page-load overhead (paper: ~0.3 s mean; "
          "median ratios 1.108/1.111/1.122) ==")
    perf = evaluate_performance(population, top_k=top_k)
    print(perf.render_table4())
    print(perf.render_ratios())
    print(f"mean overhead: {perf.mean_overhead_ms():.0f} ms")


if __name__ == "__main__":
    main()
