#!/usr/bin/env python3
"""The full §5 measurement study at a configurable scale.

Generates the synthetic site population, crawls it with the
instrumentation extension, and prints every §5 table/figure next to the
paper's numbers.

Run:  python examples/measurement_study.py [n_sites] [--jobs J]
                                           [--concurrency C]
                                           [--cache-dir D] [--backend B]
      (default 2000; the paper's scale is 20000.  --jobs fans the
      crawl over J worker processes, --concurrency overlaps C
      in-flight visits per worker — both with bit-identical results.
      --cache-dir runs the crawl through the distributed coordinator's
      shard cache, so re-running the analysis over the same population
      performs zero visits)
"""

import sys
import tempfile
import time

from repro.analysis import Study
from repro.analysis.reports import (
    render_ranked,
    render_table1,
    render_table2,
    render_table5,
)
from repro.cliutil import (pop_choice_flag, pop_flag, pop_int_flag,
                           reject_unknown_flags)
from repro.crawler import (CrawlConfig, Coordinator, ParallelCrawler,
                           ShardStore, load_logs, make_backend)
from repro.ecosystem import PopulationConfig, generate_population


def main():
    args = sys.argv[1:]
    jobs = pop_int_flag(args, "--jobs", 1, minimum=1)
    concurrency = pop_int_flag(args, "--concurrency", 1, minimum=1)
    cache_dir = pop_flag(args, "--cache-dir")
    backend_name = pop_choice_flag(args, "--backend",
                                   ["inprocess", "pool", "subprocess"])
    reject_unknown_flags(args)
    n_sites = int(args[0]) if args else 2000
    print(f"Generating a {n_sites}-site population (seed 2025)...")
    population = generate_population(PopulationConfig(n_sites=n_sites,
                                                      seed=2025))
    print(f"Crawling (scroll + up to 3 link clicks per site, "
          f"jobs={jobs}, concurrency={concurrency})...")
    start = time.time()
    config = CrawlConfig(seed=2025, concurrency=concurrency)
    if cache_dir is not None or backend_name is not None:
        backend = make_backend(backend_name or "pool", jobs=jobs,
                               cache_dir=cache_dir)
        store = ShardStore(cache_dir) if cache_dir else None
        coordinator = Coordinator(population, config, backend=backend,
                                  store=store)
        # n_shards stays jobs-independent: shard ranks key the cache,
        # so a --jobs change must keep hitting a warm store.
        with tempfile.TemporaryDirectory(prefix="measurement-crawl-") \
                as crawl_dir:
            report = coordinator.run(crawl_dir, n_shards=2)
            logs = load_logs(crawl_dir)
        print(f"(coordinator: executed={report.executed_shards} shards, "
              f"cached={report.cached_shards}, "
              f"visits executed={report.visits_executed})")
    else:
        logs = ParallelCrawler(population, config, jobs=jobs).crawl()
    print(f"Retained {len(logs)}/{n_sites} sites with complete data "
          f"(paper: 14,917/20,000) in {time.time() - start:.0f}s\n")

    study = Study(logs)

    stats = study.sec51_prevalence()
    print("== §5.1 prevalence (paper: 93.3% sites, 19 scripts, 70% "
          "tracking, 15 vs 4 cookies) ==")
    for key, value in stats.items():
        print(f"  {key:<36} {value:8.1f}")

    stats = study.sec52_api_usage()
    print("\n== §5.2 API usage (paper: 96.3% document.cookie, "
          "2.8% cookieStore) ==")
    for key, value in stats.items():
        print(f"  {key:<36} {value}")

    print("\n== Table 1 (paper: exfil 55.7%/5.9%, overwrite 31.5%/2.7%, "
          "delete 6.3%/1.8%) ==")
    print(render_table1(study.table1()))

    print("\n== Table 2 — top exfiltrated cookies ==")
    print(render_table2(study.table2(20)))

    print("\n== Figure 2 — top exfiltrators (paper: GTM at 3.29%) ==")
    print(render_ranked(study.figure2(20), "top-20 exfiltrator domains:"))

    attrs = study.sec55_overwrite_attributes()
    print("\n== §5.5 overwritten attributes (paper: 85.3/69.4/6.0/1.2) ==")
    for key, value in attrs.items():
        print(f"  {key:<10} {value:6.1f}%")

    print("\n== Table 5 — most manipulated cookies ==")
    print(render_table5(study.table5(10)))

    figure8 = study.figure8(20)
    print("\n== Figure 8 (paper: GTM tops overwriting at 0.47%; "
          "prettylittlething.com tops deleting at 0.31%) ==")
    print(render_ranked(figure8["overwriting"], "(a) overwriting:"))
    print(render_ranked(figure8["deleting"], "(b) deleting:"))

    stats = study.sec56_inclusion()
    print("\n== §5.6 inclusion paths (paper: indirect/direct = 2.5) ==")
    for key, value in stats.items():
        print(f"  {key:<34} {value:8.2f}")

    stats = study.sec8_dom_pilot()
    print("\n== §8 DOM pilot (paper: 9.4% of sites) ==")
    for key, value in stats.items():
        print(f"  {key:<44} {value:6.1f}")


if __name__ == "__main__":
    main()
