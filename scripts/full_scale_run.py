#!/usr/bin/env python3
"""Full-scale reproduction run (paper scale: 20,000 sites).

Writes all measured numbers to results_full_scale.txt for EXPERIMENTS.md.

Usage: full_scale_run.py [N] [OUT] [--jobs J] [--concurrency C]
                         [--shards S] [--backend B] [--cache-dir D]
                         [--crawl-dir W] [--max-retries R]

``--jobs`` fans the crawl over J worker processes and ``--concurrency``
overlaps C in-flight visits inside each worker via the cooperative
visit engine (both bit-identical to the serial crawl); ``--shards``
additionally aggregates the study shard by shard through
``Study.from_shards`` — all paths produce identical tables by
construction.

``--cache-dir``/``--backend`` route the crawl through the distributed
coordinator (``repro.crawler.distributed``): shard files are written
under ``--crawl-dir`` (default ``full-scale-crawl``) with a durable
work-queue and per-shard digests, and a re-run over the same population
and crawl config reuses every cached shard without executing a single
visit — repeated analysis passes become essentially free.
"""

import sys
import time

from repro.analysis import Study
from repro.analysis.reports import (
    render_ranked,
    render_table1,
    render_table2,
    render_table5,
)
from repro.cliutil import pop_choice_flag, pop_flag, pop_int_flag, \
    reject_unknown_flags
from repro.crawler import (CrawlConfig, Coordinator, ParallelCrawler,
                           ShardPlan, ShardStore, load_logs, make_backend)
from repro.ecosystem import PopulationConfig, generate_population
from repro.evaluation import (
    evaluate_access_control,
    evaluate_breakage,
    evaluate_dom_pilot,
    evaluate_performance,
)

_ARGS = sys.argv[1:]
JOBS = pop_int_flag(_ARGS, "--jobs", 1, minimum=1)
CONCURRENCY = pop_int_flag(_ARGS, "--concurrency", 1, minimum=1)
SHARDS = pop_int_flag(_ARGS, "--shards", 0, minimum=1)
BACKEND = pop_choice_flag(_ARGS, "--backend",
                          ["inprocess", "pool", "subprocess"])
CACHE_DIR = pop_flag(_ARGS, "--cache-dir")
CRAWL_DIR = pop_flag(_ARGS, "--crawl-dir") or "full-scale-crawl"
MAX_RETRIES = pop_int_flag(_ARGS, "--max-retries", 2, minimum=0)
reject_unknown_flags(_ARGS)
N = int(_ARGS[0]) if _ARGS else 20_000
OUT = _ARGS[1] if len(_ARGS) > 1 else "results_full_scale.txt"
DISTRIBUTED = BACKEND is not None or CACHE_DIR is not None


def main():
    lines = []

    def emit(text=""):
        print(text, flush=True)
        lines.append(str(text))

    t0 = time.time()
    population = generate_population(PopulationConfig(n_sites=N, seed=2025))
    emit(f"population: {N} sites ({time.time()-t0:.0f}s)")

    t0 = time.time()
    config = CrawlConfig(seed=2025, concurrency=CONCURRENCY)
    if DISTRIBUTED:
        backend = make_backend(BACKEND or "pool", jobs=JOBS,
                               cache_dir=CACHE_DIR)
        store = ShardStore(CACHE_DIR) if CACHE_DIR else None
        coordinator = Coordinator(population, config, backend=backend,
                                  max_retries=MAX_RETRIES, store=store)
        report = coordinator.run(CRAWL_DIR,
                                 n_shards=SHARDS if SHARDS > 0 else None)
        logs = load_logs(CRAWL_DIR)
        emit(f"crawl: retained {len(logs)}/{N} sites ({time.time()-t0:.0f}s, "
             f"backend={backend.name}, jobs={JOBS}, "
             f"concurrency={CONCURRENCY}, "
             f"executed={report.executed_shards}, "
             f"cached={report.cached_shards}, "
             f"visits executed={report.visits_executed}) "
             f"[paper: 14,917/20,000]")
    else:
        crawler = ParallelCrawler(population, config, jobs=JOBS)
        logs = crawler.crawl()
        emit(f"crawl: retained {len(logs)}/{N} sites ({time.time()-t0:.0f}s, "
             f"jobs={JOBS}, concurrency={CONCURRENCY}) "
             f"[paper: 14,917/20,000]")

    t0 = time.time()
    if SHARDS > 0:
        plan = ShardPlan.for_ranks([log.rank for log in logs], SHARDS)
        by_rank = {log.rank: log for log in logs}
        study = Study.from_shards(
            [[by_rank[rank] for rank in shard.ranks] for shard in plan])
        emit(f"analysis: {time.time()-t0:.0f}s ({SHARDS}-shard merge)")
    else:
        study = Study(logs)
        emit(f"analysis: {time.time()-t0:.0f}s")
    emit()
    emit("== §5.1 ==")
    for key, value in study.sec51_prevalence().items():
        emit(f"  {key:<38} {value:9.2f}")
    emit("== §5.2 ==")
    for key, value in study.sec52_api_usage().items():
        emit(f"  {key:<38} {value}")
    emit("== Table 1 ==")
    emit(render_table1(study.table1()))
    emit("== Table 2 ==")
    emit(render_table2(study.table2(20)))
    emit("== Figure 2 ==")
    emit(render_ranked(study.figure2(20), "top exfiltrators:"))
    emit("== §5.5 ==")
    for key, value in study.sec55_overwrite_attributes().items():
        emit(f"  {key:<10} {value:6.1f}%")
    emit("== Table 5 ==")
    emit(render_table5(study.table5(10)))
    figure8 = study.figure8(20)
    emit("== Figure 8 ==")
    emit(render_ranked(figure8["overwriting"], "(a) overwriting:"))
    emit(render_ranked(figure8["deleting"], "(b) deleting:"))
    emit("== §5.6 ==")
    for key, value in study.sec56_inclusion().items():
        emit(f"  {key:<36} {value:8.2f}")
    emit("== §8 DOM pilot ==")
    emit(evaluate_dom_pilot(logs).render())

    emit()
    emit("== Figure 5 (paired crawl on 3,000-site sample) ==")
    t0 = time.time()
    access = evaluate_access_control(
        population, population.sites_for(range(1, min(N, 3000) + 1)))
    emit(access.render())
    emit(f"({time.time()-t0:.0f}s)")

    emit()
    emit("== Table 3 (100 random top-10k sites) ==")
    plain = evaluate_breakage(population, sample_size=100, top_k=10_000)
    emit("without whitelist:")
    emit(plain.render())
    whitelisted = evaluate_breakage(population, sample_size=100,
                                    top_k=10_000, use_entity_whitelist=True)
    emit("with entity whitelist:")
    emit(whitelisted.render())
    emit(f"SSO broken: {plain.pct_sites_sso_broken:.0f}% -> "
         f"{whitelisted.pct_sites_sso_broken:.0f}%  [paper: 11% -> 3%]")

    emit()
    emit("== Table 4 (top-10k crawl -> paired timings) ==")
    top10k = [log for log in logs if log.rank <= 10_000]
    perf = evaluate_performance(population, logs=top10k)
    emit(f"paired sites: {perf.n_sites} [paper: 8,171]")
    emit(perf.render_table4())
    emit(perf.render_ratios())
    emit(f"mean overhead: {perf.mean_overhead_ms():.0f} ms [paper ~300 ms]")
    emit("boxplot stats (Figures 6/9):")
    for metric, pair in perf.boxplots().items():
        emit("  " + pair["no_extension"].render(f"{metric} no-ext"))
        emit("  " + pair["with_extension"].render(f"{metric} guarded"))
    emit("ratio boxplots (Figures 7/10):")
    for metric, stats in perf.ratio_stats().items():
        emit("  " + stats.render(metric, unit="x"))

    with open(OUT, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    print(f"\nwritten: {OUT}")


if __name__ == "__main__":
    main()
